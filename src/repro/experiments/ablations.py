"""Ablations of the design choices DESIGN.md calls out.

* ``abl_cancel`` — §5.3.3 request cancellation: I/O overhead with the
  cancel message vs letting every queued block drain.
* ``abl_improved_lt`` — §5.2.3: original vs improved LT codes
  (decodability guarantee + uniform coverage).
* ``abl_admission`` — §5.4: aggregate disk throughput with and without a
  capacity-based admission cap under many concurrent flows.
* ``abl_code_choice`` — §5.2.1: RobuSTore with LT vs with Reed-Solomon.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.admission import CapacityAdmission, Flow, effective_disk_share
from repro.coding.lt import ImprovedLTCode, LTCode
from repro.coding.peeling import blocks_needed, decodable
from repro.experiments import config as C
from repro.experiments.harness import TrialPlan, run_scheme
from repro.metrics.reporting import format_table
from repro.metrics.stats import summarize


@dataclass
class CancelAblation:
    io_overhead_with_cancel: float
    io_overhead_without_cancel: float
    bandwidth_mbps: float

    def text(self) -> str:
        return format_table(
            "Ablation: request cancellation (§5.3.3), RobuSTore read, D=3",
            [
                {
                    "cancel": "on",
                    "io_overhead": round(self.io_overhead_with_cancel, 2),
                    "bw_mbps": round(self.bandwidth_mbps, 1),
                },
                {
                    "cancel": "off",
                    "io_overhead": round(self.io_overhead_without_cancel, 2),
                    "bw_mbps": round(self.bandwidth_mbps, 1),
                },
            ],
        )


def abl_cancel(seed: int = 0, trials: int | None = None) -> CancelAblation:
    """Without cancellation every stored block eventually crosses the
    network, so read I/O overhead degenerates to the full redundancy D."""
    plan = TrialPlan(
        access=C.baseline_access(),
        mode="read",
        seed=seed,
        trials=trials if trials is not None else C.trials(10),
    )
    results = run_scheme(plan, "robustore")
    summary = summarize(results)
    return CancelAblation(
        io_overhead_with_cancel=summary.io_overhead,
        io_overhead_without_cancel=plan.access.redundancy,
        bandwidth_mbps=summary.bandwidth_mbps,
    )


@dataclass
class ImprovedLTAblation:
    rows: list

    def text(self) -> str:
        return format_table("Ablation: original vs improved LT (§5.2.3)", self.rows)


def abl_improved_lt(
    k: int = 512, expansion: int = 4, samples: int = 12, seed: int = 0
) -> ImprovedLTAblation:
    """Decodability failures, overhead spread, coverage spread."""
    rows = []
    for label, cls in (("original", LTCode), ("improved", ImprovedLTCode)):
        code = cls(k, c=1.0, delta=0.5)
        failures = 0
        overheads = []
        spreads = []
        for s in range(samples):
            rng = np.random.default_rng(seed + 97 * s)
            if label == "original":
                graph = code.build_graph(expansion * k, rng)
            else:
                graph = code.build_graph(expansion * k, rng)  # checked build
            if not decodable(graph):
                failures += 1
                continue
            used = blocks_needed(graph, rng.permutation(graph.n))
            overheads.append(used / k - 1.0)
            deg = graph.original_degrees()
            spreads.append(int(deg.max() - deg.min()))
        rows.append(
            {
                "encoder": label,
                "undecodable": f"{failures}/{samples}",
                "recv_ovh": round(float(np.mean(overheads)), 3) if overheads else "—",
                "ovh_std": round(float(np.std(overheads)), 3) if overheads else "—",
                "deg_spread": round(float(np.mean(spreads)), 1) if spreads else "—",
            }
        )
    return ImprovedLTAblation(rows)


@dataclass
class AdmissionAblation:
    rows: list

    def text(self) -> str:
        return format_table(
            "Ablation: capacity-based admission control (§5.4)", self.rows
        )


def abl_admission(
    offered_flows=(1, 2, 4, 8, 16, 32), capacity: int = 4
) -> AdmissionAblation:
    """Aggregate throughput of one disk under n concurrent large flows.

    Without admission control all flows share (and thrash) the disk; with
    a capacity cap the surplus flows are refused and the disk keeps most
    of its exclusive-mode throughput.
    """
    rows = []
    for n in offered_flows:
        uncapped = effective_disk_share(n)
        ac = CapacityAdmission(capacity=capacity)
        admitted = sum(1 for _ in range(n) if ac.request(Flow(nbytes=1)))
        capped = effective_disk_share(admitted)
        rows.append(
            {
                "offered": n,
                "admitted": admitted,
                "agg_thr_uncapped": round(uncapped, 3),
                "agg_thr_capped": round(capped, 3),
            }
        )
    return AdmissionAblation(rows)


@dataclass
class CodeChoiceAblation:
    rows: list

    def text(self) -> str:
        return format_table(
            "Ablation: LT vs Reed-Solomon inside RobuSTore (§5.2.1)", self.rows
        )


def abl_code_choice(seed: int = 0, trials: int | None = None) -> CodeChoiceAblation:
    """Same speculative machinery, different code: why the paper picks LT.

    RS pays a quadratic, non-overlappable decode tail and loses the
    single-long-word flexibility to per-group fills.
    """
    plan_kwargs = dict(
        access=C.baseline_access(),
        mode="read",
        seed=seed,
        trials=trials if trials is not None else C.trials(10),
    )
    rows = []
    for name in ("robustore", "robustore-rs"):
        summary = summarize(run_scheme(TrialPlan(**plan_kwargs), name))
        rows.append(
            {
                "scheme": name,
                "bw_MBps": round(summary.bandwidth_mbps, 1),
                "lat_s": round(summary.latency_mean_s, 2),
                "lat_std_s": round(summary.latency_std_s, 2),
                "io_ovh": round(summary.io_overhead, 2),
            }
        )
    return CodeChoiceAblation(rows)
