"""``python -m repro.experiments`` dispatches to the runner CLI."""

from repro.experiments.runner import main

raise SystemExit(main())
