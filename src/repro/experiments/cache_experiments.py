"""§6.3.3 experiment: performance variation from filesystem caching.

Fig 6-35 / 6-36: re-read of freshly written data, with the per-filer 2 GB
write-through filesystem cache enabled vs disabled, under random
competitive workloads.  Caching raises bandwidth for every scheme and
raises the variation of access latency (hits vs misses); RobuSTore stays
on top in both metrics.
"""

from __future__ import annotations

from repro.experiments import config as C
from repro.experiments.harness import ExperimentResult, TrialPlan, sweep


def fig6_35(seed: int = 0) -> ExperimentResult:
    """Read-after-write with the filesystem cache off vs on."""
    def plan_for(cache_on: str) -> TrialPlan:
        return TrialPlan(
            access=C.baseline_access(),
            mode="raw",
            background="heterogeneous",
            fs_cache_bytes=C.FS_CACHE_BYTES if cache_on == "cached" else 0,
            seed=seed,
        )

    return sweep(
        "fig6_35",
        "Filesystem-cache impact on read-after-write",
        "cache",
        ["uncached", "cached"],
        plan_for,
    )
