"""Further extension experiments.

* ``ext_update`` — §4.3.4 update-access amplification: coded blocks
  rewritten per modified original block, versus the optimal-code worst
  case (rewrite almost everything).
* ``ext_parallel_coding`` — §7.3: encode throughput vs worker threads.
* ``ext_qos_admission`` — Appendix B + §5.4 wired together: QoS-priority
  flows negotiating admission at capacity-limited servers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.admission import Flow, PriorityAdmission, pick_admitted_server
from repro.cluster.server import Cluster
from repro.coding.lt import ImprovedLTCode
from repro.coding.parallel import encode_throughput
from repro.core import RobuStoreScheme
from repro.core.access import MB, AccessConfig
from repro.core.update import update_access, update_amplification
from repro.metrics.reporting import format_table
from repro.sim.rng import RngHub


@dataclass
class UpdateResult:
    rows: list

    def text(self) -> str:
        return format_table(
            "Extension: update-access amplification (§4.3.4)", self.rows
        )


def ext_update(
    ks=(128, 256, 1024), expansion: int = 4, seed: int = 0
) -> UpdateResult:
    """Coded blocks touched per single-block update, across word lengths.

    The dissertation's example: K=1024, N=4096 -> ~20 coded blocks, about
    0.5% of the encoded data; an optimal code would touch ~all N-K parity
    blocks.
    """
    rows = []
    for k in ks:
        cfg = AccessConfig(
            data_bytes=k * MB, block_bytes=1 * MB,
            n_disks=min(64, k), redundancy=float(expansion - 1),
        )
        cluster = Cluster(n_disks=128)
        hub = RngHub(seed)
        scheme = RobuStoreScheme(cluster, cfg, hub=hub)
        cluster.redraw_disk_states(hub.fresh("env", k))
        scheme.prepare("f", 0)
        amp = update_amplification(scheme, "f")
        result = update_access(scheme, "f", [0], trial=1)
        rows.append(
            {
                "K": k,
                "N": cfg.n_coded,
                "blocks_rewritten": round(amp, 1),
                "fraction_%": round(100 * amp / cfg.n_coded, 2),
                "optimal_code_%": round(100 * (cfg.n_coded - k) / cfg.n_coded, 1),
                "update_lat_s": round(result.latency_s, 3),
            }
        )
    return UpdateResult(rows)


@dataclass
class ParallelCodingResult:
    rows: list

    def text(self) -> str:
        return format_table(
            "Extension: parallel LT encoding throughput (§7.3)", self.rows
        )


def ext_parallel_coding(
    k: int = 256, block_kb: int = 256, workers=(1, 2, 4), seed: int = 0
) -> ParallelCodingResult:
    """Encode throughput vs thread count (numpy XOR releases the GIL)."""
    rng = np.random.default_rng(seed)
    code = ImprovedLTCode(k, c=1.0, delta=0.5)
    graph = code.build_graph(4 * k, rng)
    rows = []
    base = None
    for w in workers:
        thr = encode_throughput(code, graph, block_kb << 10, w, rng)
        base = base or thr
        rows.append(
            {
                "workers": w,
                "encode_MBps": round(thr / MB, 1),
                "speedup": round(thr / base, 2),
            }
        )
    return ParallelCodingResult(rows)


@dataclass
class FailureResult:
    rows: list

    def text(self) -> str:
        return format_table(
            "Extension: reads under disk failures (§5.3.1 reliability)",
            self.rows,
        )


def ext_failures(
    failure_counts=(0, 1, 2, 4, 8, 16), data_mb: int = 256, trials: int = 8, seed: int = 0
) -> FailureResult:
    """Read success rate and bandwidth as disks fail outright.

    Erasure-coded redundancy reads around erased disks (any sufficient
    subset decodes); RAID-0 dies with the first failed disk it selected,
    and replication dies once all copies of any block are gone.
    """
    from repro.experiments.harness import TrialPlan, run_scheme

    cfg = AccessConfig(
        data_bytes=data_mb * MB, block_bytes=1 * MB, n_disks=64, redundancy=3.0
    )
    rows = []
    for scheme in ("raid0", "rraid-s", "robustore"):
        for nf in failure_counts:
            plan = TrialPlan(
                access=cfg, mode="read", trials=trials, seed=seed, failed_disks=nf
            )
            results = run_scheme(plan, scheme)
            ok = [r for r in results if np.isfinite(r.latency_s)]
            bw = (
                float(np.mean([r.bandwidth_bps for r in ok])) / MB if ok else 0.0
            )
            rows.append(
                {
                    "scheme": scheme,
                    "failed_disks": nf,
                    "success_%": round(100 * len(ok) / len(results)),
                    "bw_MBps": round(bw, 1),
                }
            )
    return FailureResult(rows)


@dataclass
class QoSAdmissionResult:
    rows: list

    def text(self) -> str:
        return format_table(
            "Extension: QoS-priority admission at capacity-limited servers",
            self.rows,
        )


def ext_qos_admission(
    n_servers: int = 4, capacity: int = 2, offered: int = 16, seed: int = 0
) -> QoSAdmissionResult:
    """Flows with mixed priorities negotiate admission across servers.

    High-priority (interactive) flows should land on their preferred
    servers; surplus low-priority (batch) flows spill over or are refused
    — the Appendix B negotiation running on §5.4 controllers.
    """
    rng = np.random.default_rng(seed)
    controllers = [PriorityAdmission(capacity) for _ in range(n_servers)]
    counts = {
        label: {"offered": 0, "admitted": 0, "refused": 0}
        for label in ("interactive", "batch")
    }
    preferred_hits = 0
    for i in range(offered):
        label = "interactive" if i % 3 == 0 else "batch"
        flow = Flow(nbytes=1 * MB, priority=0 if label == "interactive" else 5)
        preferred = int(rng.integers(0, n_servers))
        server = pick_admitted_server(controllers, flow, preferred=preferred)
        counts[label]["offered"] += 1
        if server is None:
            counts[label]["refused"] += 1
        else:
            counts[label]["admitted"] += 1
            if server == preferred:
                preferred_hits += 1
    rows = [{"class": label, **stats} for label, stats in counts.items()]
    rows.append(
        {"class": "preferred-hits", "offered": "", "admitted": preferred_hits, "refused": ""}
    )
    return QoSAdmissionResult(rows)


@dataclass
class BaselinesResult:
    rows: list

    def text(self) -> str:
        return format_table(
            "Extension: RobuSTore vs the full RAID family (1 access point)",
            self.rows,
        )


def ext_baselines(data_mb: int = 512, trials: int = 10, seed: int = 0) -> BaselinesResult:
    """All six schemes at the baseline point (adds RAID-5, RAID-0+1)."""
    from repro.experiments.harness import TrialPlan, run_scheme
    from repro.metrics.stats import summarize

    cfg = AccessConfig(
        data_bytes=data_mb * MB, block_bytes=1 * MB, n_disks=64, redundancy=3.0
    )
    rows = []
    for name in ("raid0", "raid5", "raid0+1", "rraid-s", "rraid-a", "robustore"):
        plan = TrialPlan(access=cfg, mode="read", trials=trials, seed=seed)
        s = summarize(run_scheme(plan, name))
        rows.append(
            {
                "scheme": name,
                "bw_MBps": round(s.bandwidth_mbps, 1),
                "lat_std_s": round(s.latency_std_s, 2),
                "io_ovh": round(s.io_overhead, 2),
            }
        )
    return BaselinesResult(rows)


@dataclass
class WanRegimeResult:
    rows: list

    def text(self) -> str:
        return format_table(
            "Extension: slow shared-WAN regime (Collins & Plank, §2.3)",
            self.rows,
        )


def ext_wan_regime(
    nic_mbps: float = 10.0, data_mb: int = 128, trials: int = 6, seed: int = 0
) -> WanRegimeResult:
    """Reproduce the related-work crossover.

    Collins & Plank (DSN'05) found Reed-Solomon beats LDPC-family codes in
    slow shared WANs (<10 MB/s, small N): there the client NIC is the
    bottleneck, so LT's ~40-50% reception overhead costs real transfer
    time while RS's decode hides behind the trickling arrivals.  The
    dissertation's rebuttal is the fast-network regime (abl_code_choice),
    where the quadratic RS decode dominates instead.  Both regimes run
    here from the same simulator.
    """
    from repro.experiments.harness import TrialPlan, run_scheme
    from repro.metrics.stats import summarize

    rows = []
    for label, nic in (("fast lambda (inf)", float("inf")), (f"WAN {nic_mbps} MB/s", nic_mbps * MB)):
        cfg = AccessConfig(
            data_bytes=data_mb * MB,
            block_bytes=1 * MB,
            n_disks=64,
            redundancy=3.0,
            client_bandwidth_bps=nic,
        )
        for name in ("robustore", "robustore-rs"):
            plan = TrialPlan(access=cfg, mode="read", trials=trials, seed=seed)
            s = summarize(run_scheme(plan, name))
            rows.append(
                {
                    "network": label,
                    "scheme": name,
                    "bw_MBps": round(s.bandwidth_mbps, 1),
                    "lat_s": round(s.latency_mean_s, 2),
                }
            )
    return WanRegimeResult(rows)


# ``ext_repair`` moved to :mod:`repro.experiments.repair_experiment`: the
# single-scheme rebuild-time sweep grew into the coding-family x
# rebuild-scheduler repair-economy grid.
