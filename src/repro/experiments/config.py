"""Experiment configuration (§6.2.5) and environment knobs.

The paper's baseline: 64 disks out of a 128-disk pool (8 per filer), 1 ms
RTT, 1 MB blocks, 3x data redundancy, 1 GB accesses, 100 trials per point.

Environment knobs (for quick runs vs full paper-scale runs):

``REPRO_TRIALS``
    Trials per configuration point (default 20; the paper uses 100).
``REPRO_DATA_MB``
    Access size in MB (default 1024, the paper's 1 GB).
``REPRO_ENGINE``
    Simulation engine for every access: ``closed`` (vectorised closed
    form, the default) or ``event`` (the event-driven reference engine).
"""

from __future__ import annotations

import os

from repro.core.access import MB, AccessConfig

#: Disk pool size (§6.2.5).
POOL_DISKS = 128
#: Disks per filer (§6.2.5).
DISKS_PER_FILER = 8
#: Baseline round-trip latency.
BASELINE_RTT_S = 0.001
#: Filesystem cache per filer when caching is enabled (§6.2.5).
FS_CACHE_BYTES = 2 << 30
#: Background-workload interval range explored by §6.2.5 (seconds).
BG_INTERVAL_RANGE_S = (0.006, 0.200)


def trials(default: int = 20) -> int:
    """Trials per point (``REPRO_TRIALS`` overrides)."""
    return int(os.environ.get("REPRO_TRIALS", default))


def data_mb(default: int = 1024) -> int:
    """Access size in MB (``REPRO_DATA_MB`` overrides)."""
    return int(os.environ.get("REPRO_DATA_MB", default))


def engine(default: str = "closed") -> str:
    """Simulation engine for every access (``REPRO_ENGINE`` overrides)."""
    value = os.environ.get("REPRO_ENGINE", default)
    if value not in ("closed", "event"):
        raise ValueError(f"unknown engine {value!r} (expected closed|event)")
    return value


def baseline_access(**overrides) -> AccessConfig:
    """The §6.2.5 baseline access configuration, with overrides."""
    base = dict(
        data_bytes=data_mb() * MB,
        block_bytes=1 * MB,
        n_disks=64,
        redundancy=3.0,
        lt_c=1.0,
        lt_delta=0.5,
    )
    base.update(overrides)
    return AccessConfig(**base)


#: The four schemes, in the order the paper's figures list them.
ALL_SCHEMES = ("raid0", "rraid-s", "rraid-a", "robustore")
