"""Extension: multi-user workload evaluation (§7.3 future work).

The dissertation models competing users only as synthetic background
streams and leaves "a more accurate model of multi-user workloads" to
future work.  This experiment runs it: N concurrent clients issue the
same-shaped access over the *same* drives in the event-driven reference
engine, so contention emerges from the shared per-drive queues instead of
an open-loop arrival model.

Reported per client count: mean per-client latency, per-client bandwidth,
and aggregate delivered throughput — for RobuSTore and RAID-0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.server import Cluster
from repro.core import SCHEMES
from repro.core.access import MB, AccessConfig
from repro.core.reference import reference_read
from repro.metrics.reporting import format_table
from repro.sim.rng import RngHub


@dataclass
class MultiUserResult:
    rows: list

    def text(self) -> str:
        return format_table(
            "Extension: concurrent clients sharing one disk pool "
            "(event-driven engine)",
            self.rows,
        )


def ext_multiuser(
    client_counts=(1, 2, 4, 8),
    data_mb: int = 64,
    n_disks: int = 16,
    pool: int = 16,
    trials: int = 3,
    seed: int = 0,
) -> MultiUserResult:
    """Per-client and aggregate performance vs concurrent client count."""
    cfg = AccessConfig(
        data_bytes=data_mb * MB, block_bytes=1 * MB, n_disks=n_disks, redundancy=3.0
    )
    rows = []
    for scheme_name in ("raid0", "robustore"):
        for n in client_counts:
            lats = []
            for trial in range(trials):
                cluster = Cluster(n_disks=pool, rtt_s=0.001)
                hub = RngHub(seed + trial)
                scheme = SCHEMES[scheme_name](cluster, cfg, hub=hub)
                cluster.redraw_disk_states(hub.fresh("env", trial))
                record = scheme.prepare("f", trial)
                ref = reference_read(
                    cluster,
                    record.disk_ids,
                    record.placement,
                    cfg.block_bytes,
                    scheme_name,
                    lambda d: hub.fresh("svc", trial, d),
                    k=cfg.k,
                    graph=record.extra.get("graph"),
                    n_clients=n,
                )
                lats.extend(ref.per_client.values())
            lat = float(np.mean(lats))
            per_client_bw = data_mb / lat
            rows.append(
                {
                    "scheme": scheme_name,
                    "clients": n,
                    "lat_s": round(lat, 2),
                    "per_client_MBps": round(per_client_bw, 1),
                    "aggregate_MBps": round(per_client_bw * n, 1),
                }
            )
    return MultiUserResult(rows)
