"""Extension: multi-user workload evaluation (§7.3 future work).

The dissertation models competing users only as synthetic background
streams and leaves "a more accurate model of multi-user workloads" to
future work.  Two experiments run it:

* ``ext_multiuser`` (this module) — the *closed-loop* compatibility
  entry: N concurrent clients issue the same-shaped access over the
  *same* drives in the event-driven reference engine, so contention
  emerges from the shared per-drive queues.  The plumbing lives in the
  :mod:`repro.serve` facade (:func:`repro.serve.closed_loop_point`);
  this module only shapes the sweep and formats the table.
* ``ext_serve`` (:mod:`repro.experiments.serve_experiment`) — the
  *open-loop* serving simulation that scales the same question to 10⁵+
  clients with consistent-hash placement and SLO metrics.

Reported per client count: mean per-client latency, per-client bandwidth,
and aggregate delivered throughput — for RobuSTore and RAID-0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.access import MB, AccessConfig
from repro.metrics.reporting import format_table
from repro.serve import closed_loop_point


@dataclass
class MultiUserResult:
    rows: list

    def text(self) -> str:
        return format_table(
            "Extension: concurrent clients sharing one disk pool "
            "(event-driven engine)",
            self.rows,
        )


def ext_multiuser(
    client_counts=(1, 2, 4, 8),
    data_mb: int = 64,
    n_disks: int = 16,
    pool: int = 16,
    trials: int = 3,
    seed: int = 0,
) -> MultiUserResult:
    """Per-client and aggregate performance vs concurrent client count."""
    cfg = AccessConfig(
        data_bytes=data_mb * MB, block_bytes=1 * MB, n_disks=n_disks, redundancy=3.0
    )
    rows = []
    for scheme_name in ("raid0", "robustore"):
        for n in client_counts:
            lats = closed_loop_point(
                scheme_name, n, cfg, pool=pool, rtt_s=0.001,
                trials=trials, seed=seed,
            )
            lat = float(np.mean(lats))
            per_client_bw = data_mb / lat
            rows.append(
                {
                    "scheme": scheme_name,
                    "clients": n,
                    "lat_s": round(lat, 2),
                    "per_client_MBps": round(per_client_bw, 1),
                    "aggregate_MBps": round(per_client_bw * n, 1),
                }
            )
    return MultiUserResult(rows)
