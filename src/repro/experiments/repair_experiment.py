"""``ext_repair``: the repair economy — coding families x rebuild schedulers.

Chapter 5 treats rebuild as an afterthought: reads route around dead
disks and the lost redundancy is someone else's problem.  This experiment
prices that problem.  A mild seeded MTTF storm (1-2 permanent fail-stops
per run) hits a cluster holding files under three coding families —

* LT (``robustore``): whole-object reconstruction — re-read ~K(1+eps)
  blocks, re-encode fresh coded blocks;
* grouped Reed-Solomon (``robustore-rs``): per-group reconstruction —
  re-read a full group word per affected group;
* product-matrix regenerating (``regen-msr`` / ``regen-mbr``): per-node
  functional repair — each of ``d`` helpers ships one sub-symbol per lost
  node (Dimakis et al.'s repair-bandwidth point).

— and every (family x scheduler) cell runs the same storm through a
:class:`repro.rebuild.RepairLedger`-metered repair pass under one of the
rebuild scheduling policies (eager, lazy threshold, batched).  The table
reports the economy: helper bytes read and bytes moved per disk failure,
read amplification per lost MB, repairs executed inline vs deferred to
the end-of-horizon drain, degraded reads observed while redundancy was
below target, and foreground p99 latency inflation against the
fault-free baseline.

The headline ordering (asserted by the golden regression): regenerating
repair moves strictly fewer helper bytes per failure than RS group
reconstruction, which moves fewer than LT's whole-object re-read — at
equal storage overhead (redundancy 3.0, so MSR's nodes-per-stripe lands
on the same 4x expansion as RS).  Scheduling never changes the bytes
(repair passes are keyed RNG draws, not consumption-order draws); it
only moves *when* they flow and how long reads stay degraded.

Equal seeds reproduce equal storms, ledgers and tables bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.server import Cluster
from repro.core.access import MB, AccessConfig
from repro.core.pipeline import scheme_class
from repro.core.repair import drain_repairs
from repro.experiments import config as C
from repro.faults import maybe_repair
from repro.faults.model import FaultModel
from repro.faults.plan import DISK_FAIL
from repro.metrics.reporting import format_table
from repro.rebuild import RepairLedger, scheduler_for
from repro.sim.rng import RngHub

#: The repair storm: per-disk exponential fail-stop clocks, no repair
#: window (kills are permanent until the rebuild pass replaces the lost
#: blocks), plus transient slowdowns for texture.  Tuned so the sampler
#: below lands 1-2 kills inside the access window — the sparse-failure
#: regime where per-group/per-node reconstruction amortizes over few
#: losses and the coding families separate cleanly.
STORM = FaultModel(
    mttf_s=25.0,
    mttr_s=None,
    slow_mtbf_s=8.0,
    slow_factor=3.0,
    slow_duration_s=0.3,
)

#: Storm sampling horizon — kept inside the foreground read window so
#: kills actually degrade reads rather than landing after they finish.
HORIZON_S = 1.0

#: Any permanent kill drops a file below this fraction of its redundancy
#: target, so every storm triggers the repair pipeline (the 0.5 default
#: floor would shrug off one kill of thirty-two at redundancy 3).
TRIGGER_FLOOR = 0.99

#: The coding families under comparison (all at redundancy 3.0).
REPAIR_SCHEMES = ("robustore", "robustore-rs", "regen-msr", "regen-mbr")

#: Rebuild scheduling policies and their knobs.  Lazy's absolute floor
#: sits below any sparse-storm surviving redundancy, so it defers every
#: task to the drain; batched releases its backlog every third offer.
POLICIES = (
    ("eager", {}),
    ("lazy", {"floor": 0.25}),
    ("batched", {"batch_size": 3}),
)


def sample_storm(rng: np.random.Generator, n_disks: int):
    """Draw storms until one has 1-2 permanent kills (deterministic in rng).

    Rejected draws advance the stream, so the accepted plan is still a
    pure function of the seed; the acceptance window pins the sparse
    failure regime the economy comparison needs.
    """
    while True:
        plan = STORM.sample_plan(rng, n_disks, HORIZON_S)
        kills = sum(1 for ev in plan if ev.kind == DISK_FAIL)
        if 1 <= kills <= 2:
            return plan, kills


@dataclass
class RepairEconomyResult:
    """Per (coding family x scheduler) repair-economy ledger summaries."""

    rows: list
    summaries: dict[str, dict]
    #: Helper bytes read per disk failure under the eager policy, per scheme
    #: — the quantity the regenerating-code literature orders.
    bytes_per_failure: dict[str, float]

    def text(self) -> str:
        return format_table(
            "Extension: the repair economy (coding family x rebuild scheduler)",
            self.rows,
        )


def _run_cell(
    name: str, policy: str, kwargs: dict, cfg: AccessConfig,
    n_disks: int, files: int, seed: int,
) -> dict:
    """One (scheme, policy) cell: provision, storm, repair, re-read."""
    cluster = Cluster(n_disks=n_disks, rtt_s=C.BASELINE_RTT_S)
    hub = RngHub(seed)
    scheme = scheme_class(name)(cluster, cfg, hub=hub)
    scheme.REPAIR_REDUNDANCY_FLOOR = TRIGGER_FLOOR
    ledger = RepairLedger()
    cluster.repair_ledger = ledger
    scheduler = scheduler_for(policy, **kwargs)

    # Provision every file and take fault-free baseline reads on one
    # frozen environment (same disk-state draw in every cell, so the
    # only cross-cell difference is the coding family and the policy).
    cluster.redraw_disk_states(hub.fresh("env", 0))
    base = []
    for t in range(files):
        scheme.prepare(f"f{t}", t)
        base.append(scheme.read(f"f{t}", t).latency_s)

    # The storm stream is keyed by seed alone — every cell gets the
    # identical storm, so ledgers are comparable across the grid.
    plan, kills = sample_storm(hub.fresh("rebuild", 0), n_disks)
    cluster.install_faults(plan)

    # Foreground pass 1: degraded reads, each offering its repair task.
    fg = []
    for t in range(files):
        r = scheme.read(f"f{t}", t)
        fg.append(r.latency_s)
        maybe_repair(scheme, f"f{t}", t, r, scheduler=scheduler, ledger=ledger)
    inline = len(ledger.events)

    # Foreground pass 2: what a client sees *after* the policy had its
    # say — eager reads repaired placements, lazy still-degraded ones.
    for t in range(files):
        fg.append(scheme.read(f"f{t}", t).latency_s)

    drained = len(drain_repairs(scheme, scheduler, ledger))

    lost_mb = ledger.blocks_lost * cfg.block_bytes / MB
    p99_base = float(np.percentile(base, 99))
    p99_fg = float(np.percentile(fg, 99))
    return {
        "scheme": name,
        "policy": policy,
        "kills": kills,
        "lost_MB": round(lost_mb, 1),
        "helper_rd_MB": round(ledger.bytes_read_helpers / MB, 1),
        "moved_MB": round(ledger.bytes_moved / MB, 1),
        "rd_MB_per_fail": round(ledger.bytes_read_helpers / MB / kills, 1),
        "read_amp": round(ledger.bytes_read_helpers / (lost_mb * MB), 2)
        if lost_mb else 0.0,
        "inline": inline,
        "drained": drained,
        "degr_reads": ledger.degraded_reads,
        "p99_infl": round(p99_fg / p99_base, 2),
        "_summary": ledger.summary(),
    }


def ext_repair(
    data_mb: int = 64,
    n_disks: int = 32,
    seed: int = 0,
    schemes=REPAIR_SCHEMES,
    trials: int | None = None,
) -> RepairEconomyResult:
    """Sweep coding family x rebuild scheduler under one pinned storm.

    ``trials`` is the number of provisioned files per cell (each file is
    one repair task when the storm hits); defaults to 4.
    """
    files = 4 if trials is None else trials
    cfg = AccessConfig(
        data_bytes=data_mb * MB, block_bytes=1 * MB,
        n_disks=n_disks, redundancy=3.0,
    )
    rows = []
    summaries: dict[str, dict] = {}
    bytes_per_failure: dict[str, float] = {}
    for name in schemes:
        for policy, kwargs in POLICIES:
            row = _run_cell(name, policy, kwargs, cfg, n_disks, files, seed)
            summaries[f"{name}/{policy}"] = row.pop("_summary")
            rows.append(row)
            if policy == "eager":
                bytes_per_failure[name] = (
                    summaries[f"{name}/eager"]["bytes_read_helpers"] / row["kills"]
                )
    return RepairEconomyResult(rows, summaries, bytes_per_failure)
