"""§6.3.2 experiments: variation from competitive background workloads."""

from __future__ import annotations

from repro.disk.workload import homogeneous_layout
from repro.experiments import config as C
from repro.experiments.harness import ExperimentResult, TrialPlan, sweep
from repro.experiments.layout_experiments import REDUNDANCIES


def fig6_24(
    intervals_ms=(6, 10, 20, 40, 80, 200), seed: int = 0
) -> ExperimentResult:
    """Figs 6-24/6-25: homogeneous layout + homogeneous competitive load.

    The one scenario where RobuSTore loses (by its reception overhead):
    with no disk heterogeneity to tolerate, plain replication peaks higher.
    """
    return sweep(
        "fig6_24",
        "Read vs competitive workload interval (homogeneous everything)",
        "bg interval (ms)",
        list(intervals_ms),
        lambda ms: TrialPlan(
            access=C.baseline_access(),
            mode="read",
            layout=homogeneous_layout(512, 1.0),
            fixed_zone=4,
            background="homogeneous",
            bg_interval_s=ms / 1000.0,
            seed=seed,
        ),
    )


def fig6_26(redundancies=REDUNDANCIES, seed: int = 0) -> ExperimentResult:
    """Figs 6-26/6-27/6-28: read vs redundancy, heterogeneous bg load."""
    return sweep(
        "fig6_26",
        "Read vs redundancy (heterogeneous competitive workloads)",
        "redundancy D",
        list(redundancies),
        lambda d: TrialPlan(
            access=C.baseline_access(redundancy=d),
            mode="read",
            background="heterogeneous",
            seed=seed,
        ),
    )


def fig6_29(redundancies=REDUNDANCIES, seed: int = 0) -> ExperimentResult:
    """Figs 6-29/6-30/6-31: write vs redundancy, heterogeneous bg load."""
    return sweep(
        "fig6_29",
        "Write vs redundancy (heterogeneous competitive workloads)",
        "redundancy D",
        list(redundancies),
        lambda d: TrialPlan(
            access=C.baseline_access(redundancy=d),
            mode="write",
            background="heterogeneous",
            seed=seed,
        ),
    )


def fig6_32(
    redundancies=(0.5, 1.0, 2.0, 3.0, 5.0, 7.0), seed: int = 0
) -> ExperimentResult:
    """Figs 6-32/6-33/6-34: read-after-write under heterogeneous bg load."""
    return sweep(
        "fig6_32",
        "Read after speculative write vs redundancy (heterogeneous bg)",
        "redundancy D",
        list(redundancies),
        lambda d: TrialPlan(
            access=C.baseline_access(redundancy=d),
            mode="raw",
            background="heterogeneous",
            seed=seed,
        ),
    )
