"""§6.3.1 experiments: performance variation from in-disk data layout.

Each function reproduces one x-axis sweep and yields the three metrics the
paper plots for it (bandwidth, latency std-dev, I/O overhead), i.e. one
function covers a *triplet* of paper figures.
"""

from __future__ import annotations

from repro.core.access import MB
from repro.experiments import config as C
from repro.experiments.harness import ExperimentResult, TrialPlan, sweep


def fig6_06(
    disk_counts=(2, 4, 8, 16, 32, 64, 128), seed: int = 0
) -> ExperimentResult:
    """Figs 6-6/6-7/6-8: read vs number of disks, heterogeneous layout."""
    return sweep(
        "fig6_06",
        "Read vs number of disks (heterogeneous layout)",
        "#disks",
        list(disk_counts),
        lambda h: TrialPlan(access=C.baseline_access(n_disks=h), mode="read", seed=seed),
    )


def fig6_09(
    block_mbs=(0.5, 1, 2, 4, 8, 16, 32, 64), seed: int = 0
) -> ExperimentResult:
    """Figs 6-9/6-10/6-11: read vs coding block size."""
    return sweep(
        "fig6_09",
        "Read vs block size (heterogeneous layout)",
        "block (MB)",
        list(block_mbs),
        lambda mb: TrialPlan(
            access=C.baseline_access(block_bytes=int(mb * MB)), mode="read", seed=seed
        ),
    )


def fig6_12(
    rtts_ms=(1, 5, 10, 25, 50, 100), data_mb: int | None = None, seed: int = 0
) -> ExperimentResult:
    """Figs 6-12/6-13/6-14: read vs network latency.

    Run once at the baseline size and once at 128 MB to see RRAID-A's
    multi-RTT sensitivity grow for small requests (Fig 6-12b).
    """
    access = C.baseline_access() if data_mb is None else C.baseline_access(
        data_bytes=data_mb * MB
    )
    label = f"{access.data_bytes // MB} MB access"
    return sweep(
        f"fig6_12_{access.data_bytes // MB}mb",
        f"Read vs network RTT ({label})",
        "RTT (ms)",
        list(rtts_ms),
        lambda ms: TrialPlan(access=access, mode="read", rtt_s=ms / 1000.0, seed=seed),
    )


REDUNDANCIES = (0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 9.0)


def fig6_15(redundancies=REDUNDANCIES, seed: int = 0) -> ExperimentResult:
    """Figs 6-15/6-16/6-17: read vs degree of data redundancy."""
    return sweep(
        "fig6_15",
        "Read vs data redundancy (heterogeneous layout)",
        "redundancy D",
        list(redundancies),
        lambda d: TrialPlan(access=C.baseline_access(redundancy=d), mode="read", seed=seed),
    )


def fig6_18(redundancies=REDUNDANCIES, seed: int = 0) -> ExperimentResult:
    """Figs 6-18/6-19/6-20: write vs degree of data redundancy."""
    return sweep(
        "fig6_18",
        "Write vs data redundancy (heterogeneous layout)",
        "redundancy D",
        list(redundancies),
        lambda d: TrialPlan(access=C.baseline_access(redundancy=d), mode="write", seed=seed),
    )


def fig6_21(
    redundancies=(0.5, 1.0, 2.0, 3.0, 5.0, 7.0), seed: int = 0
) -> ExperimentResult:
    """Figs 6-21/6-22/6-23: read-after-write (unbalanced striping)."""
    return sweep(
        "fig6_21",
        "Read after speculative write vs redundancy (unbalanced striping)",
        "redundancy D",
        list(redundancies),
        lambda d: TrialPlan(access=C.baseline_access(redundancy=d), mode="raw", seed=seed),
    )
