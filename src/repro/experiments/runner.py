"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments fig6_06          # one experiment
    python -m repro.experiments all              # everything
    python -m repro.experiments --list
    python -m repro.experiments fig6_06 --trace out.json   # Chrome trace

``REPRO_TRIALS`` / ``REPRO_DATA_MB`` scale run size (paper scale:
``REPRO_TRIALS=100 REPRO_DATA_MB=1024``).  ``-j N`` fans the run's
``(plan, scheme)`` jobs over N worker processes, and results are memoized
in the content-addressed ``.repro-cache/`` store (``--no-cache`` /
``--cache-dir`` to opt out or relocate; ``python -m repro.exec`` for
cache stats and GC).  ``--trace`` installs a live
:class:`repro.obs.Tracer` for the run and writes a Chrome
``trace_event``-format JSON (open in ``chrome://tracing`` or Perfetto);
traced runs execute sequentially and uncached — the trace's single global
DES timeline only exists in one process.  ``--trace-detail`` adds
per-block spans (large!).  Inspect a written trace with
``python -m repro.obs.report out.json``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import REGISTRY


def expand_ids(ids: list[str]) -> list[str]:
    """Expand ``all`` (anywhere in the list) and drop duplicates.

    Order is preserved: the first occurrence of each id wins, and ``all``
    splices the registry order in at its position.
    """
    expanded: list[str] = []
    for token in ids:
        expanded.extend(REGISTRY) if token == "all" else expanded.append(token)
    seen: set[str] = set()
    return [i for i in expanded if not (i in seen or seen.add(i))]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the RobuSTore evaluation tables and figures.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (or 'all')")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiment jobs over N worker processes (default 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result cache location (default .repro-cache or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each sweep experiment's series as CSV into DIR",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record a Chrome trace_event JSON of the run into PATH",
    )
    parser.add_argument(
        "--trace-detail",
        action="store_true",
        help="include per-block spans in the trace (much larger output)",
    )
    parser.add_argument(
        "--engine",
        choices=("closed", "event"),
        default=None,
        help="simulation engine for every access (default: $REPRO_ENGINE or closed)",
    )
    args = parser.parse_args(argv)

    if args.list or not args.ids:
        for name in REGISTRY:
            print(name)
        return 0

    ids = expand_ids(args.ids)
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.trace_detail and not args.trace:
        parser.error("--trace-detail requires --trace")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.csv:
        _preflight_csv_dir(parser, args.csv)

    if args.engine:
        # TrialPlan defaults its engine field from REPRO_ENGINE, so setting
        # the variable threads the choice through every run_scheme call
        # (including ones executed in -j worker processes).
        import os

        os.environ["REPRO_ENGINE"] = args.engine

    tracer = None
    if args.trace:
        from repro.obs import Tracer

        try:
            # Fail before the run, not after it: a long experiment whose
            # trace can't be written is a wasted run.
            with open(args.trace, "w"):
                pass
        except OSError as exc:
            parser.error(f"cannot write trace file: {exc}")
        tracer = Tracer(detail=args.trace_detail)
        if args.jobs > 1:
            print(
                "[exec] --trace forces sequential, uncached execution"
                " (one process owns the trace timeline); ignoring -j",
                file=sys.stderr,
            )

    from repro.exec import Executor, ResultStore, use_executor

    store = None if args.no_cache else ResultStore(args.cache_dir)
    executor = Executor(
        jobs=args.jobs, store=store, progress=sys.stderr.isatty()
    )
    with use_executor(executor):
        for exp_id in ids:
            t0 = time.perf_counter()
            if tracer is not None:
                from repro.obs import use_tracer

                with use_tracer(tracer):
                    result = REGISTRY[exp_id]()
            else:
                result = REGISTRY[exp_id]()
            elapsed = time.perf_counter() - t0
            print(f"\n=== {exp_id} ({elapsed:.1f}s) " + "=" * 40)
            print(result.text())
            if args.csv:
                path = write_csv(result, exp_id, args.csv)
                if path:
                    print(f"[csv] {path}")

    if executor.stats.submitted:
        print(f"[exec] {executor.stats.summary()}", file=sys.stderr)

    if tracer is not None:
        from repro.obs import TraceReport

        tracer.write_chrome(args.trace)
        print()
        print(TraceReport.from_tracer(tracer).render())
        print(f"[trace] {args.trace}")
    return 0


def _preflight_csv_dir(parser: argparse.ArgumentParser, directory: str) -> None:
    """Fail before the run if the CSV directory can't be created/written."""
    import os

    try:
        os.makedirs(directory, exist_ok=True)
        probe = os.path.join(directory, ".csv-writable")
        with open(probe, "w"):
            pass
        os.remove(probe)
    except OSError as exc:
        parser.error(f"cannot write CSV directory {directory!r}: {exc}")


def write_csv(result, exp_id: str, directory: str) -> str | None:
    """Write an ExperimentResult's three metric series as one CSV file.

    Non-sweep results (plain tables) are skipped; returns the file path or
    ``None``.
    """
    import csv
    import os

    from repro.metrics.reporting import METRIC_COLUMNS

    if not hasattr(result, "series") or not hasattr(result, "xs"):
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{exp_id}.csv")
    metrics = tuple(name for name, _label in METRIC_COLUMNS)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["scheme", "x"] + list(metrics))
        series = {m: result.series(m) for m in metrics}
        for scheme in series[metrics[0]]:
            for i, x in enumerate(result.xs):
                writer.writerow(
                    [scheme, x] + [series[m][scheme][i] for m in metrics]
                )
    return path


if __name__ == "__main__":
    raise SystemExit(main())
