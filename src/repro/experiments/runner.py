"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments fig6_06          # one experiment
    python -m repro.experiments all              # everything
    python -m repro.experiments --list

``REPRO_TRIALS`` / ``REPRO_DATA_MB`` scale run size (paper scale:
``REPRO_TRIALS=100 REPRO_DATA_MB=1024``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import REGISTRY


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the RobuSTore evaluation tables and figures.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (or 'all')")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each sweep experiment's series as CSV into DIR",
    )
    args = parser.parse_args(argv)

    if args.list or not args.ids:
        for name in REGISTRY:
            print(name)
        return 0

    ids = list(REGISTRY) if args.ids == ["all"] else args.ids
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        return 2

    for exp_id in ids:
        t0 = time.perf_counter()
        result = REGISTRY[exp_id]()
        elapsed = time.perf_counter() - t0
        print(f"\n=== {exp_id} ({elapsed:.1f}s) " + "=" * 40)
        print(result.text())
        if args.csv:
            path = write_csv(result, exp_id, args.csv)
            if path:
                print(f"[csv] {path}")
    return 0


def write_csv(result, exp_id: str, directory: str) -> str | None:
    """Write an ExperimentResult's three metric series as one CSV file.

    Non-sweep results (plain tables) are skipped; returns the file path or
    ``None``.
    """
    import csv
    import os

    if not hasattr(result, "series") or not hasattr(result, "xs"):
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{exp_id}.csv")
    metrics = ("bandwidth_mbps", "latency_mean_s", "latency_std_s", "io_overhead")
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["scheme", "x"] + list(metrics))
        series = {m: result.series(m) for m in metrics}
        for scheme in series[metrics[0]]:
            for i, x in enumerate(result.xs):
                writer.writerow(
                    [scheme, x] + [series[m][scheme][i] for m in metrics]
                )
    return path


if __name__ == "__main__":
    raise SystemExit(main())
