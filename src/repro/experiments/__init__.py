"""Experiment registry: every table and figure of the evaluation.

Run with ``python -m repro.experiments <id>`` (or ``repro-experiments``).
Each entry is a zero-argument callable returning an object with a
``.text()`` rendering.
"""

from __future__ import annotations

from functools import partial

from repro.experiments import (
    ablations,
    extensions,
    ext_matrix,
    faultstorm,
    multiuser,
    repair_experiment,
    serve_experiment,
    cache_experiments,
    coding_experiments,
    competitive_experiments,
    disk_experiments,
    layout_experiments,
)

REGISTRY = {
    # Chapter 4/5 — coding
    "fig4_1": coding_experiments.fig4_1,
    "tab5_1": coding_experiments.tab5_1,
    "fig5_1": coding_experiments.fig5_1,
    "fig5_2": coding_experiments.fig5_2,
    "fig5_3": coding_experiments.fig5_3,
    # Chapter 6 — disk substrate
    "tab6_1": disk_experiments.tab6_1,
    "fig6_5": disk_experiments.fig6_5,
    # Chapter 6 — layout variation (each id covers its figure triplet)
    "fig6_06": layout_experiments.fig6_06,
    "fig6_09": layout_experiments.fig6_09,
    "fig6_12": layout_experiments.fig6_12,
    "fig6_12b": partial(layout_experiments.fig6_12, data_mb=128),
    "fig6_15": layout_experiments.fig6_15,
    "fig6_18": layout_experiments.fig6_18,
    "fig6_21": layout_experiments.fig6_21,
    # Chapter 6 — competitive workloads
    "fig6_24": competitive_experiments.fig6_24,
    "fig6_26": competitive_experiments.fig6_26,
    "fig6_29": competitive_experiments.fig6_29,
    "fig6_32": competitive_experiments.fig6_32,
    # Chapter 6 — filesystem caching
    "fig6_35": cache_experiments.fig6_35,
    # Ablations
    "abl_cancel": ablations.abl_cancel,
    "abl_improved_lt": ablations.abl_improved_lt,
    "abl_admission": ablations.abl_admission,
    "abl_code_choice": ablations.abl_code_choice,
    # Extensions (§7.3 future work)
    "ext_multiuser": multiuser.ext_multiuser,
    "ext_serve": serve_experiment.ext_serve,
    "ext_update": extensions.ext_update,
    "ext_parallel_coding": extensions.ext_parallel_coding,
    "ext_qos_admission": extensions.ext_qos_admission,
    "ext_failures": extensions.ext_failures,
    "ext_baselines": extensions.ext_baselines,
    "ext_wan_regime": extensions.ext_wan_regime,
    "ext_repair": repair_experiment.ext_repair,
    "ext_faultstorm": faultstorm.ext_faultstorm,
    "ext_matrix": ext_matrix.ext_matrix,
}

__all__ = ["REGISTRY"]
