"""Plain-text replication expressed as a (degenerate) erasure code.

Used by the RRAID-S / RRAID-A baselines and by the Appendix A analysis:
replica ``r`` of original block ``i`` is coded block ``r * K + i``.
"""

from __future__ import annotations

import numpy as np


class ReplicationCode:
    """(R*K, K) replication: each original block copied ``replicas`` times."""

    def __init__(self, k: int, replicas: int) -> None:
        if k < 1 or replicas < 1:
            raise ValueError("k and replicas must be >= 1")
        self.k = k
        self.replicas = replicas
        self.n = k * replicas

    @property
    def rate(self) -> float:
        return 1.0 / self.replicas

    @property
    def redundancy(self) -> float:
        return float(self.replicas - 1)

    def original_of(self, coded_id: int) -> int:
        """Original block a coded (replica) id carries."""
        if not 0 <= coded_id < self.n:
            raise IndexError(coded_id)
        return coded_id % self.k

    def replica_ids(self, original_id: int) -> np.ndarray:
        """All coded ids holding copies of ``original_id``."""
        if not 0 <= original_id < self.k:
            raise IndexError(original_id)
        return original_id + self.k * np.arange(self.replicas)

    def encode(self, data_blocks: np.ndarray) -> np.ndarray:
        data_blocks = np.asarray(data_blocks, dtype=np.uint8)
        if data_blocks.shape[0] != self.k:
            raise ValueError(f"expected {self.k} blocks, got {data_blocks.shape[0]}")
        return np.tile(data_blocks, (self.replicas, 1))

    def decode(self, coded_ids, coded_blocks: np.ndarray) -> np.ndarray:
        """Reconstruct; requires at least one replica of every original."""
        coded_blocks = np.asarray(coded_blocks, dtype=np.uint8)
        out = np.zeros((self.k, coded_blocks.shape[1]), dtype=np.uint8)
        have = np.zeros(self.k, dtype=bool)
        for i, cid in enumerate(coded_ids):
            orig = self.original_of(int(cid))
            if not have[orig]:
                out[orig] = coded_blocks[i]
                have[orig] = True
        if not have.all():
            missing = int(np.count_nonzero(~have))
            raise ValueError(f"{missing} original blocks have no received replica")
        return out

    def covered(self, coded_ids) -> bool:
        """Whether the id set contains >= 1 replica of every original block."""
        have = np.zeros(self.k, dtype=bool)
        for cid in coded_ids:
            have[int(cid) % self.k] = True
        return bool(have.all())

    def blocks_needed(self, order) -> int:
        """Prefix length of ``order`` needed to cover all originals.

        Returns ``len(order) + 1`` if never covered — the replication
        analogue of :func:`repro.coding.peeling.blocks_needed`.
        """
        order = list(order)
        have = np.zeros(self.k, dtype=bool)
        remaining = self.k
        for count, cid in enumerate(order, start=1):
            orig = int(cid) % self.k
            if not have[orig]:
                have[orig] = True
                remaining -= 1
                if remaining == 0:
                    return count
        return len(order) + 1
