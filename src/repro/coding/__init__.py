"""Erasure-coding stack.

Implements every code discussed in the dissertation:

* :mod:`repro.coding.lt` — LT codes with the dissertation's improvements
  (pseudo-random uniform coverage, guaranteed decodability, lazy XOR),
  the workhorse of RobuSTore (§5.2).
* :mod:`repro.coding.reed_solomon` — systematic Reed-Solomon over GF(256),
  the optimal-code baseline (Table 5-1).
* :mod:`repro.coding.parity` — single-parity code (RAID-5 style).
* :mod:`repro.coding.replication` — replication as a degenerate code.
* :mod:`repro.coding.tornado` / :mod:`repro.coding.raptor` — the other
  near-optimal LDPC codes surveyed in §2.2.3.
* :mod:`repro.coding.peeling` — the incremental belief-propagation decoder.
* :mod:`repro.coding.analysis` — Appendix A closed-form reassembly analysis.
* :mod:`repro.coding.regenerating` — exact product-matrix regenerating
  codes at the MSR/MBR points of the storage–repair-bandwidth tradeoff.
"""

from repro.coding.lt import ImprovedLTCode, LTCode, LTGraph
from repro.coding.parity import ParityCode
from repro.coding.peeling import PeelingDecoder
from repro.coding.reed_solomon import ReedSolomonCode
from repro.coding.regenerating import (
    ProductMatrixMBR,
    ProductMatrixMSR,
    mbr_point,
    msr_point,
    product_matrix_code,
)
from repro.coding.replication import ReplicationCode
from repro.coding.soliton import ideal_soliton, robust_soliton

__all__ = [
    "ImprovedLTCode",
    "LTCode",
    "LTGraph",
    "ParityCode",
    "PeelingDecoder",
    "ProductMatrixMBR",
    "ProductMatrixMSR",
    "ReedSolomonCode",
    "ReplicationCode",
    "ideal_soliton",
    "mbr_point",
    "msr_point",
    "product_matrix_code",
    "robust_soliton",
]
