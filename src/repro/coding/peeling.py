"""Incremental peeling (belief-propagation) decoder for LDPC-style codes.

The decoder consumes coded blocks one at a time, in any order — exactly how
a RobuSTore client receives them from heterogeneous disks — and reports as
soon as all ``k`` original blocks are resolvable.  It implements the *lazy
XOR* improvement of §5.2.3: payload XOR work is deferred until the moment a
block is actually decoded, so no intermediate data is ever produced.

Two operating modes:

* **symbolic** (no payloads): tracks only decodability — the simulator's hot
  path, used to find the number of blocks needed to finish a read.
* **data** (payloads supplied to :meth:`PeelingDecoder.add`): reconstructs
  the original blocks.
"""

from __future__ import annotations

from collections import defaultdict, deque

import numpy as np

from repro.coding.lt import LTGraph
from repro.coding.xorblocks import xor_into


class PeelingDecoder:
    """Online peeling decoder over an :class:`~repro.coding.lt.LTGraph`.

    Parameters
    ----------
    graph:
        The coding graph shared with the encoder.
    block_len:
        If given, the decoder operates in data mode and expects each
        :meth:`add` call to carry a payload of this many bytes.
    """

    def __init__(self, graph: LTGraph, block_len: int | None = None) -> None:
        self.graph = graph
        self.k = graph.k
        self.block_len = block_len
        self._decoded = np.zeros(self.k, dtype=bool)
        # Mirror of ``_decoded`` with O(1) native indexing: the add/ripple
        # loops probe it per neighbour, where numpy scalar indexing is the
        # dominant cost at LT degrees (~ln k elements per block).
        self._dec = bytearray(self.k)
        # coded_id -> neighbours as a native int tuple (graph arrays are
        # numpy; converting once per coded block keeps the loops pure-C).
        self._nbt: dict[int, tuple[int, ...]] = {}
        self._decoded_count = 0
        self._blocks_used = 0
        self._xor_ops = 0
        self._edges_peeled = 0
        # Per arrived coded block: count of still-undecoded neighbours.
        self._pending: dict[int, int] = {}
        # Coded blocks fully consumed (resolved or redundant on arrival).
        self._consumed: set[int] = set()
        #: Coded blocks that actually resolved an original (the encoder's
        #: graph-repair pass must not replace these).
        self.resolvers: set[int] = set()
        # original id -> arrived coded blocks still referencing it.
        self._rev: dict[int, list[int]] = defaultdict(list)
        self._payloads: dict[int, np.ndarray] = {}
        self._xor_workers = 1
        if block_len is not None:
            self._data = np.zeros((self.k, block_len), dtype=np.uint8)
            # Striped threaded XOR for the lazy per-resolution work
            # (byte-identical; only worthwhile on multi-MB blocks, which
            # striped_xor_into gates on internally).  Imported lazily so
            # the symbolic simulator hot path never touches the pool.
            from repro.coding.parallel import coding_threads, striped_xor_into

            self._xor_workers = coding_threads()
            self._striped_xor = striped_xor_into
        else:
            self._data = None

    # -- state ---------------------------------------------------------
    @property
    def decoded_count(self) -> int:
        return self._decoded_count

    @property
    def is_complete(self) -> bool:
        return self._decoded_count >= self.k

    @property
    def blocks_used(self) -> int:
        """Number of coded blocks fed in so far."""
        return self._blocks_used

    @property
    def reception_overhead(self) -> float:
        """epsilon such that (1 + epsilon) K blocks were consumed."""
        return self._blocks_used / self.k - 1.0

    @property
    def xor_ops(self) -> int:
        """Block-XOR operations performed (lazy: only on resolution)."""
        return self._xor_ops

    @property
    def edges_peeled(self) -> int:
        """Graph edges consumed while decoding (Fig 5-2's metric)."""
        return self._edges_peeled

    def is_decoded(self, original_id: int) -> bool:
        return bool(self._decoded[original_id])

    # -- feeding --------------------------------------------------------
    def add(self, coded_id: int, payload: np.ndarray | None = None) -> int:
        """Feed one coded block; return the number of newly decoded originals.

        ``coded_id`` indexes into the graph.  Feeding the same block twice is
        a no-op for decoding progress but still counts toward
        :attr:`blocks_used` (the client did receive the bytes).
        """
        if not 0 <= coded_id < self.graph.n:
            raise IndexError(f"coded block {coded_id} out of range")
        self._blocks_used += 1
        if coded_id in self._pending or coded_id in self._consumed:
            return 0
        if self._data is not None:
            if payload is None:
                raise ValueError("data-mode decoder requires a payload")
            self._payloads[coded_id] = np.array(payload, dtype=np.uint8, copy=True)

        nb = self._nbt.get(coded_id)
        if nb is None:
            nb = self._nbt[coded_id] = tuple(self.graph.neighbors[coded_id].tolist())
        dec = self._dec
        undecoded = [o for o in nb if not dec[o]]
        remaining = len(undecoded)
        if remaining == 0:
            self._consumed.add(coded_id)
            self._payloads.pop(coded_id, None)
            return 0
        self._pending[coded_id] = remaining
        rev = self._rev
        for o in undecoded:
            rev[o].append(coded_id)
        if remaining == 1:
            return self._ripple(coded_id)
        return 0

    def _ripple(self, start_coded: int) -> int:
        """Process the cascade of degree-one coded blocks."""
        newly = 0
        queue = deque([start_coded])
        while queue:
            cj = queue.popleft()
            if self._pending.get(cj, 0) != 1:
                continue
            dec = self._dec
            undecoded = [o for o in self._nbt[cj] if not dec[o]]
            assert len(undecoded) == 1
            target = undecoded[0]
            self._resolve(target, cj)
            newly += 1
            # Releasing `target` may create new degree-one blocks.
            for cj2 in self._rev.pop(target, []):
                if cj2 in self._pending:
                    self._pending[cj2] -= 1
                    if self._pending[cj2] == 1:
                        queue.append(cj2)
                    elif self._pending[cj2] == 0:
                        self._consumed.add(cj2)
                        del self._pending[cj2]
                        self._payloads.pop(cj2, None)
            if self.is_complete:
                break
        return newly

    def _resolve(self, original_id: int, coded_id: int) -> None:
        """Decode ``original_id`` from coded block ``coded_id`` (lazy XOR)."""
        nb = self._nbt[coded_id]
        self._edges_peeled += len(nb)
        if self._data is not None:
            buf = self._data[original_id]
            buf[:] = self._payloads[coded_id]
            workers = self._xor_workers
            for o in nb:
                if o != original_id:
                    if workers > 1:
                        self._striped_xor(buf, self._data[o], workers)
                    else:
                        xor_into(buf, self._data[o])
                    self._xor_ops += 1
        else:
            self._xor_ops += max(0, len(nb) - 1)
        self._decoded[original_id] = True
        self._dec[original_id] = 1
        self._decoded_count += 1
        self._pending.pop(coded_id, None)
        self._consumed.add(coded_id)
        self.resolvers.add(coded_id)
        self._payloads.pop(coded_id, None)

    # -- results ----------------------------------------------------------
    def get_data(self) -> np.ndarray:
        """Return the decoded original blocks (data mode only)."""
        if self._data is None:
            raise RuntimeError("decoder is in symbolic mode")
        if not self.is_complete:
            raise RuntimeError(
                f"decoding incomplete: {self._decoded_count}/{self.k} blocks"
            )
        return self._data


def blocks_needed(graph: LTGraph, order: np.ndarray | list[int]) -> int:
    """Number of coded blocks (in the given arrival order) to fully decode.

    Returns ``len(order) + 1`` if the prefix never completes (sentinel used
    by callers to detect insufficient redundancy).
    """
    decoder = PeelingDecoder(graph)
    for count, coded_id in enumerate(order, start=1):
        decoder.add(int(coded_id))
        if decoder.is_complete:
            return count
    return len(order) + 1


def decodable(graph: LTGraph, subset: np.ndarray | list[int] | None = None) -> bool:
    """Whether the coded-block ``subset`` (default: all) can reconstruct."""
    decoder = PeelingDecoder(graph)
    ids = range(graph.n) if subset is None else subset
    for coded_id in ids:
        decoder.add(int(coded_id))
        if decoder.is_complete:
            return True
    return decoder.is_complete
