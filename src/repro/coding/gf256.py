"""GF(2^8) arithmetic, vectorised with numpy lookup tables.

The field is GF(256) with the AES/Rijndael primitive polynomial
x^8 + x^4 + x^3 + x + 1 (0x11B).  Multiplication uses a full 256x256
product table so that multiplying a scalar coefficient into a long data
vector is a single fancy-indexing operation — the hot path of Reed-Solomon
encode/decode.
"""

from __future__ import annotations

import numpy as np

PRIMITIVE_POLY = 0x11B
FIELD_SIZE = 256
GENERATOR = 3  # 3 is a primitive element for 0x11B


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by the generator (3) in GF(256)
        y = x ^ (x << 1)
        if y & 0x100:
            y ^= PRIMITIVE_POLY
        x = y & 0xFF
    exp[255:510] = exp[:255]
    # Full product table: mul[a, b] = a*b in GF(256).
    a = np.arange(256)
    la = log[a][:, None]
    lb = log[a][None, :]
    mul = exp[(la + lb) % 255].astype(np.uint8)
    mul[0, :] = 0
    mul[:, 0] = 0
    return exp, log, mul


EXP, LOG, MUL = _build_tables()


def gf_add(a, b):
    """Addition in GF(256) is XOR."""
    return np.bitwise_xor(a, b)


def gf_mul(a, b):
    """Element-wise product; either operand may be scalar or array."""
    return MUL[np.asarray(a, dtype=np.uint8), np.asarray(b, dtype=np.uint8)]


def gf_inv(a):
    """Multiplicative inverse (0 has none)."""
    arr = np.asarray(a, dtype=np.uint8)
    if np.any(arr == 0):
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return EXP[255 - LOG[arr]].astype(np.uint8) if arr.ndim else np.uint8(EXP[255 - LOG[int(arr)]])


def gf_div(a, b):
    """Element-wise quotient a / b."""
    return gf_mul(a, gf_inv(b))


def gf_pow(a: int, n: int) -> int:
    """Scalar exponentiation a**n."""
    a = int(a)
    if a == 0:
        return 0 if n else 1
    return int(EXP[(int(LOG[a]) * (n % 255)) % 255])


def gf_matmul(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Matrix product over GF(256).

    ``A`` is (m, k) and ``B`` is (k, n); the result is (m, n).  Implemented
    as k rank-1 XOR accumulations with table-lookup scaling, which keeps all
    inner work in vectorised numpy.
    """
    A = np.asarray(A, dtype=np.uint8)
    B = np.asarray(B, dtype=np.uint8)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError(f"incompatible shapes {A.shape} x {B.shape}")
    m, k = A.shape
    n = B.shape[1]
    out = np.zeros((m, n), dtype=np.uint8)
    for j in range(k):
        col = A[:, j]
        nz = np.nonzero(col)[0]
        if nz.size == 0:
            continue
        # out[nz] ^= col[nz] * B[j]  (^= writes through the fancy index)
        out[nz] ^= MUL[col[nz][:, None], B[j][None, :]]
    return out


def gf_mat_inv(A: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(256) by Gauss-Jordan elimination.

    Raises
    ------
    np.linalg.LinAlgError
        If the matrix is singular.
    """
    A = np.asarray(A, dtype=np.uint8)
    n = A.shape[0]
    if A.shape != (n, n):
        raise ValueError("matrix must be square")
    aug = np.zeros((n, 2 * n), dtype=np.uint8)
    aug[:, :n] = A
    aug[np.arange(n), n + np.arange(n)] = 1
    for col in range(n):
        pivot_rows = np.nonzero(aug[col:, col])[0]
        if pivot_rows.size == 0:
            raise np.linalg.LinAlgError("singular matrix over GF(256)")
        pivot = col + int(pivot_rows[0])
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        inv_p = gf_inv(int(aug[col, col]))
        aug[col] = MUL[np.uint8(inv_p), aug[col]]
        # Eliminate the column from every other row at once.
        factors = aug[:, col].copy()
        factors[col] = 0
        rows = np.nonzero(factors)[0]
        if rows.size:
            aug[rows] ^= MUL[factors[rows][:, None], aug[col][None, :]]
    return aug[:, n:].copy()


def cauchy_matrix(rows: int, cols: int) -> np.ndarray:
    """A (rows x cols) Cauchy matrix: every square submatrix is invertible.

    Entry (i, j) = 1 / (x_i + y_j) with x, y disjoint element sets; this is
    the standard construction for MDS erasure-code generator matrices.
    """
    if rows + cols > FIELD_SIZE:
        raise ValueError("rows + cols must not exceed 256 for GF(256) Cauchy")
    x = np.arange(rows, dtype=np.uint8)
    y = np.arange(rows, rows + cols, dtype=np.uint8)
    denom = np.bitwise_xor(x[:, None], y[None, :])
    return EXP[(255 - LOG[denom]) % 255].astype(np.uint8)


def vandermonde_matrix(rows: int, cols: int) -> np.ndarray:
    """Vandermonde matrix V[i, j] = alpha_i ** j with distinct alpha_i."""
    if rows > FIELD_SIZE - 1:
        raise ValueError("too many rows for distinct nonzero evaluation points")
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        alpha = i + 1
        for j in range(cols):
            out[i, j] = gf_pow(alpha, j)
    return out
