"""LT codes — original (Luby 2002) and the dissertation's improved variant.

The improved variant (§5.2.3) differs from the original in three ways:

1. **Uniform coverage** — original-block neighbours are drawn from a
   pseudo-random permutation stream so all original blocks end up with equal
   (±1) node degree, removing low-degree bottleneck blocks.
2. **Guaranteed decodability** — after generating the bipartite graph the
   encoder peels it symbolically; if the full set of N coded blocks cannot
   reconstruct the data the graph is regenerated.
3. **Lazy XOR decoding** — performed by
   :class:`repro.coding.peeling.PeelingDecoder`, which defers all memory XOR
   until a block can actually be resolved.

Being *rateless*, an LT encoder can extend an existing graph with additional
coded blocks at any time (used by RobuSTore's speculative writes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.coding.soliton import expected_degree, robust_soliton, sample_degrees
from repro.coding.xorblocks import xor_reduce


@dataclass
class LTGraph:
    """A bipartite LT coding graph.

    Attributes
    ----------
    k:
        Number of original blocks (left nodes).
    neighbors:
        ``neighbors[j]`` is the sorted array of original-block indices XORed
        into coded block ``j``.
    """

    k: int
    neighbors: list = field(default_factory=list)

    @property
    def n(self) -> int:
        """Number of coded blocks currently in the graph."""
        return len(self.neighbors)

    @property
    def edge_count(self) -> int:
        return sum(len(nb) for nb in self.neighbors)

    def coded_degrees(self) -> np.ndarray:
        return np.array([len(nb) for nb in self.neighbors], dtype=np.int64)

    def original_degrees(self) -> np.ndarray:
        """Node degree of each original block (coverage profile)."""
        deg = np.zeros(self.k, dtype=np.int64)
        for nb in self.neighbors:
            deg[nb] += 1
        return deg

    def affected_coded_blocks(self, original_id: int) -> list[int]:
        """Coded blocks that must change if ``original_id`` is updated.

        Supports the update procedure of §4.3.4: modifying one original
        block requires regenerating only the coded blocks adjacent to it.
        """
        if not 0 <= original_id < self.k:
            raise IndexError(f"original block {original_id} out of range")
        return [j for j, nb in enumerate(self.neighbors) if original_id in nb]


class LTCode:
    """Original LT code with the robust soliton degree distribution.

    Parameters
    ----------
    k:
        Word length (number of original blocks).
    c, delta:
        Robust soliton parameters (the dissertation's ``C`` and ``δ``).
    """

    def __init__(self, k: int, c: float = 0.1, delta: float = 0.5) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.c = c
        self.delta = delta
        self.distribution = robust_soliton(k, c, delta)

    @property
    def mean_coded_degree(self) -> float:
        return expected_degree(self.distribution)

    # -- graph construction ------------------------------------------------
    def build_graph(self, n: int, rng: np.random.Generator) -> LTGraph:
        """Generate a graph with ``n`` coded blocks."""
        graph = LTGraph(self.k)
        self.extend_graph(graph, n, rng)
        return graph

    def extend_graph(self, graph: LTGraph, count: int, rng: np.random.Generator) -> None:
        """Ratelessly append ``count`` more coded blocks to ``graph``."""
        degrees = sample_degrees(self.distribution, count, rng)
        k = self.k
        for d in degrees:
            d = min(int(d), k)
            graph.neighbors.append(np.sort(rng.choice(k, size=d, replace=False)))

    # -- data path ----------------------------------------------------------
    def encode(self, data_blocks: np.ndarray, graph: LTGraph) -> np.ndarray:
        """XOR-encode ``data_blocks`` (k rows) into ``graph.n`` coded blocks."""
        data_blocks = np.asarray(data_blocks, dtype=np.uint8)
        if data_blocks.shape[0] != self.k:
            raise ValueError(
                f"expected {self.k} original blocks, got {data_blocks.shape[0]}"
            )
        out = np.empty((graph.n, data_blocks.shape[1]), dtype=np.uint8)
        for j, nb in enumerate(graph.neighbors):
            out[j] = xor_reduce(data_blocks, nb)
        return out

    def encode_one(
        self, data_blocks: np.ndarray, graph: LTGraph, coded_id: int
    ) -> np.ndarray:
        """Encode a single coded block (used by updates and rateless writes)."""
        return xor_reduce(np.asarray(data_blocks, dtype=np.uint8), graph.neighbors[coded_id])


class ImprovedLTCode(LTCode):
    """LT code with uniform coverage and guaranteed decodability (§5.2.3).

    Parameters
    ----------
    max_attempts:
        How many times :meth:`build_graph` may regenerate before giving up.
    """

    def __init__(
        self,
        k: int,
        c: float = 0.1,
        delta: float = 0.5,
        max_attempts: int = 50,
    ) -> None:
        super().__init__(k, c, delta)
        self.max_attempts = max_attempts

    def build_graph(self, n: int, rng: np.random.Generator) -> LTGraph:
        """Generate a graph of ``n`` coded blocks that provably decodes.

        The full set of ``n`` blocks is peeled symbolically; failure triggers
        regeneration (improvement 1 of §5.2.3).

        Raises
        ------
        RuntimeError
            If no decodable graph is found within ``max_attempts`` tries
            (indicates ``n`` is too small for ``k`` at these parameters).
        """
        from repro.coding.peeling import PeelingDecoder

        if n < self.k:
            raise RuntimeError(
                f"no decodable LT graph possible: n={n} < k={self.k}"
            )
        graph = None
        # Below ~1.3K coded blocks a random graph almost never peels fully;
        # go straight to the constructive repair instead of burning retries.
        attempts = self.max_attempts if n >= 1.3 * self.k else 2
        for _ in range(attempts):
            graph = LTGraph(self.k)
            self._extend_uniform(graph, n, rng)
            decoder = PeelingDecoder(graph)
            for j in range(n):
                decoder.add(j)
                if decoder.is_complete:
                    break
            if decoder.is_complete:
                return graph
        # Constructive repair (needed at low redundancy, where random
        # regeneration essentially never yields a peelable graph): replace
        # a coded block that resolved nothing with a degree-1 copy of a
        # still-undecoded original, re-peel, repeat.  Each pass strictly
        # increases the decodable prefix, so it terminates within k passes.
        assert graph is not None
        for _ in range(self.k + 1):
            decoder = PeelingDecoder(graph)
            for j in range(n):
                decoder.add(j)
                if decoder.is_complete:
                    break
            if decoder.is_complete:
                return graph
            stuck = next(
                i for i in range(self.k) if not decoder.is_decoded(i)
            )
            replace_j = next(
                j for j in range(n) if j not in decoder.resolvers
            )
            graph.neighbors[replace_j] = np.array([stuck], dtype=np.int64)
        raise RuntimeError(
            f"graph repair failed for k={self.k}, n={n} (internal error)"
        )

    def extend_graph(self, graph: LTGraph, count: int, rng: np.random.Generator) -> None:
        self._extend_uniform(graph, count, rng)

    def _extend_uniform(self, graph: LTGraph, count: int, rng: np.random.Generator) -> None:
        """Append blocks choosing neighbours via a permutation stream.

        A fresh random permutation of the original blocks is consumed
        index-by-index; a new permutation is drawn whenever the previous one
        is exhausted, so original-block degrees differ by at most one
        (improvement 2 of §5.2.3).  Duplicates within one coded block (which
        can only occur across a permutation boundary) are skipped.
        """
        degrees = sample_degrees(self.distribution, count, rng)
        k = self.k
        stream = [int(x) for x in rng.permutation(k)]
        pos = 0
        for d in degrees:
            d = min(int(d), k)
            chosen: list[int] = []
            seen: set[int] = set()
            while len(chosen) < d:
                if pos >= len(stream):
                    stream = [int(x) for x in rng.permutation(k)]
                    pos = 0
                j = pos
                while j < len(stream) and stream[j] in seen:
                    j += 1
                if j == len(stream):
                    # Every pending index is already in this coded block:
                    # defer them behind a fresh permutation so each index is
                    # still consumed exactly once per permutation appearance.
                    stream = stream[pos:] + [int(x) for x in rng.permutation(k)]
                    pos = 0
                    continue
                # Swap the usable index to the front; skipped duplicates stay
                # pending and keep their turn.
                stream[pos], stream[j] = stream[j], stream[pos]
                idx = stream[pos]
                pos += 1
                seen.add(idx)
                chosen.append(idx)
            graph.neighbors.append(np.sort(np.array(chosen, dtype=np.int64)))
