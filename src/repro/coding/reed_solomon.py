"""Systematic Reed-Solomon erasure code over GF(256).

The optimal-erasure-code baseline of the dissertation (§2.2.2, Table 5-1):
any K of the N coded blocks reconstruct the data, at quadratic-in-K
computation cost — which is exactly why the dissertation rejects it for
long code words in favour of LT codes.

Construction: the generator matrix is ``[I_K ; C]`` where ``C`` is a
``(N-K) x K`` Cauchy matrix, so every K x K submatrix of the generator is
invertible (the MDS property).
"""

from __future__ import annotations

import numpy as np

from repro.coding.gf256 import MUL, cauchy_matrix, gf_mat_inv, gf_matmul


class ReedSolomonCode:
    """Systematic (N, K) Reed-Solomon erasure code.

    Parameters
    ----------
    k:
        Number of data blocks.
    n:
        Total coded blocks (first ``k`` are verbatim data).  Requires
        ``k <= n <= 256`` for GF(256).
    """

    def __init__(self, k: int, n: int) -> None:
        if not 1 <= k <= n:
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
        if n > 256:
            raise ValueError("GF(256) Reed-Solomon supports at most 256 blocks")
        self.k = k
        self.n = n
        self.parity_matrix = cauchy_matrix(n - k, k) if n > k else np.zeros((0, k), np.uint8)

    @property
    def rate(self) -> float:
        return self.k / self.n

    @property
    def redundancy(self) -> float:
        """Degree of data redundancy D = N/K - 1 (§2.2.1)."""
        return self.n / self.k - 1.0

    def generator_row(self, coded_id: int) -> np.ndarray:
        """Row of the generator matrix producing coded block ``coded_id``."""
        if not 0 <= coded_id < self.n:
            raise IndexError(coded_id)
        if coded_id < self.k:
            row = np.zeros(self.k, dtype=np.uint8)
            row[coded_id] = 1
            return row
        return self.parity_matrix[coded_id - self.k]

    # -- data path -------------------------------------------------------
    def encode(self, data_blocks: np.ndarray) -> np.ndarray:
        """Encode K data blocks into N coded blocks (systematic)."""
        data_blocks = np.asarray(data_blocks, dtype=np.uint8)
        if data_blocks.shape[0] != self.k:
            raise ValueError(f"expected {self.k} blocks, got {data_blocks.shape[0]}")
        out = np.empty((self.n, data_blocks.shape[1]), dtype=np.uint8)
        out[: self.k] = data_blocks
        if self.n > self.k:
            out[self.k :] = gf_matmul(self.parity_matrix, data_blocks)
        return out

    def decode(self, coded_ids: np.ndarray | list[int], coded_blocks: np.ndarray) -> np.ndarray:
        """Reconstruct the K data blocks from any K coded blocks.

        Parameters
        ----------
        coded_ids:
            Indices (into 0..N-1) of the supplied blocks; must contain at
            least K distinct ids.
        coded_blocks:
            Matching payload rows.
        """
        ids = np.asarray(coded_ids, dtype=np.int64)
        coded_blocks = np.asarray(coded_blocks, dtype=np.uint8)
        ids, first = np.unique(ids, return_index=True)
        coded_blocks = coded_blocks[first]
        if ids.size < self.k:
            raise ValueError(f"need {self.k} distinct blocks, got {ids.size}")
        ids = ids[: self.k]
        coded_blocks = coded_blocks[: self.k]

        # Fast path: all systematic blocks present in 0..k-1.
        if np.array_equal(ids, np.arange(self.k)):
            return coded_blocks.copy()

        sub = np.stack([self.generator_row(int(i)) for i in ids])
        inv = gf_mat_inv(sub)
        return gf_matmul(inv, coded_blocks)

    def decoding_matrix_ops(self) -> int:
        """Rough count of GF multiply-accumulate ops per decode (for docs)."""
        return self.k * self.k


def encode_bandwidth_probe(
    code: ReedSolomonCode, block_len: int, rng: np.random.Generator
) -> tuple[float, np.ndarray]:
    """Encode random data once and return (seconds, coded blocks).

    Helper for the Table 5-1 benchmark.
    """
    import time

    data = rng.integers(0, 256, size=(code.k, block_len), dtype=np.uint8)
    t0 = time.perf_counter()
    coded = code.encode(data)
    return time.perf_counter() - t0, coded


def scale_row(coef: int, row: np.ndarray) -> np.ndarray:
    """Scalar-vector product over GF(256) (exposed for tests)."""
    return MUL[np.uint8(coef), np.asarray(row, dtype=np.uint8)]
