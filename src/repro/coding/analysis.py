"""Closed-form reassembly analysis (Appendix A, Figure 4-1).

Two questions, both for K original blocks expanded into R*K output blocks
and a uniformly random arrival order:

* replication — probability that the first M arrivals contain at least one
  copy of every original block (Appendix A.1)::

      P(M) = sum_{i=1..K} (-1)^{K-i} C(K,i) C(R i, M) / C(R K, M)

* LT coding (degree-d approximation, Appendix A.2) — probability that the
  union of the neighbours of the first M coded blocks covers all K
  originals::

      P_c(M) = sum_{i=1..K} (-1)^{K-i} C(K,i) (i/K)^{d M}

The dissertation evaluates these at K = 1024, 4x expansion, d = 5.

Both are alternating inclusion-exclusion sums whose terms dwarf their total
— float64 (even in log space) cancels catastrophically for mid-range M, so
everything is evaluated in exact big-integer arithmetic and converted to
float only at the very end.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb, lgamma, log

import numpy as np

#: Terms whose magnitude relative to the denominator is below this bound are
#: skipped; the retained terms are still summed exactly, so the total error
#: is below ``K * _PRUNE`` (~1e-15 for K = 1024).
_PRUNE_LOG = log(1e-18)


def _log_comb(n: int, r: int) -> float:
    if r < 0 or r > n:
        return float("-inf")
    return lgamma(n + 1) - lgamma(r + 1) - lgamma(n - r + 1)


def replication_coverage_probability(k: int, replicas: int, m: int) -> float:
    """P(first M of the R*K shuffled replicas cover all K originals).

    Parameters
    ----------
    k, replicas, m:
        Original block count, copies per block, arrivals consumed.
    """
    if k < 1 or replicas < 1:
        raise ValueError("k and replicas must be >= 1")
    if m > replicas * k:
        raise ValueError("m exceeds the total number of replica blocks")
    if m < k:
        return 0.0
    total = 0
    log_denom = _log_comb(replicas * k, m)
    for i in range(1, k + 1):
        if _log_comb(k, i) + _log_comb(replicas * i, m) - log_denom < _PRUNE_LOG:
            continue
        term = comb(k, i) * comb(replicas * i, m)
        total += term if (k - i) % 2 == 0 else -term
    p = float(Fraction(total, comb(replicas * k, m)))
    return min(max(p, 0.0), 1.0)


def erasure_coverage_probability(k: int, degree: int, m: int) -> float:
    """P(degree*M random neighbour draws cover all K originals).

    Approximates each coded block as ``degree`` independent uniform draws
    (the Appendix A.2 model with d = 5).  ``degree`` must be an integer so
    the sum stays exact.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    degree = int(degree)
    if degree < 1:
        raise ValueError("degree must be >= 1")
    if m <= 0:
        return 0.0
    e = degree * m
    total = 0
    log_k = log(k)
    for i in range(1, k + 1):
        if _log_comb(k, i) + e * (log(i) - log_k) < _PRUNE_LOG:
            continue
        term = comb(k, i) * pow(i, e)
        total += term if (k - i) % 2 == 0 else -term
    p = float(Fraction(total, pow(k, e)))
    return min(max(p, 0.0), 1.0)


def replication_coverage_curve(k: int, replicas: int, ms) -> np.ndarray:
    """Vector of replication coverage probabilities over arrival counts."""
    return np.array(
        [replication_coverage_probability(k, replicas, int(m)) for m in ms]
    )


def erasure_coverage_curve(k: int, degree: int, ms) -> np.ndarray:
    """Vector of erasure-coded coverage probabilities over arrival counts."""
    return np.array([erasure_coverage_probability(k, degree, int(m)) for m in ms])


def expected_replicated_blocks(k: int) -> float:
    """Coupon-collector expectation K * H_K ~= K ln K (§5.2.1's f(K))."""
    i = np.arange(1, k + 1, dtype=np.float64)
    return float(k * np.sum(1.0 / i))


def minimum_erasure_blocks(k: int, mean_degree: float) -> float:
    """§5.2.2 lower bound: K ln K / d_e coded blocks to cover K originals."""
    if mean_degree <= 0:
        raise ValueError("mean_degree must be positive")
    return k * log(k) / mean_degree if k > 1 else 1.0


def median_blocks_needed(curve_m: np.ndarray, curve_p: np.ndarray) -> int:
    """Smallest M with coverage probability >= 0.5 along a curve."""
    idx = np.nonzero(np.asarray(curve_p) >= 0.5)[0]
    if idx.size == 0:
        raise ValueError("curve never reaches probability 0.5")
    return int(np.asarray(curve_m)[idx[0]])
