"""Single-parity erasure code (the RAID-5 mechanism, §2.2.2)."""

from __future__ import annotations

import numpy as np

from repro.coding.xorblocks import xor_reduce


class ParityCode:
    """(K+1, K) parity code: one XOR parity block, recovers one erasure."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.n = k + 1

    @property
    def rate(self) -> float:
        return self.k / self.n

    def encode(self, data_blocks: np.ndarray) -> np.ndarray:
        """Return K data blocks followed by their parity block."""
        data_blocks = np.asarray(data_blocks, dtype=np.uint8)
        if data_blocks.shape[0] != self.k:
            raise ValueError(f"expected {self.k} blocks, got {data_blocks.shape[0]}")
        parity = xor_reduce(data_blocks, np.arange(self.k))
        return np.vstack([data_blocks, parity[None, :]])

    def decode(self, coded_ids, coded_blocks: np.ndarray) -> np.ndarray:
        """Reconstruct from any K of the K+1 blocks."""
        ids = list(int(i) for i in coded_ids)
        coded_blocks = np.asarray(coded_blocks, dtype=np.uint8)
        if len(set(ids)) < self.k:
            raise ValueError(f"need {self.k} distinct blocks")
        out = np.zeros((self.k, coded_blocks.shape[1]), dtype=np.uint8)
        have = set()
        parity_row = None
        for i, bid in enumerate(ids):
            if bid < self.k:
                if bid not in have:
                    out[bid] = coded_blocks[i]
                    have.add(bid)
            else:
                parity_row = coded_blocks[i]
        missing = [i for i in range(self.k) if i not in have]
        if len(missing) > 1:
            raise ValueError(f"parity code cannot recover {len(missing)} erasures")
        if missing:
            if parity_row is None:
                raise ValueError("missing data block and no parity supplied")
            rest = xor_reduce(out, [i for i in range(self.k) if i != missing[0]])
            out[missing[0]] = np.bitwise_xor(parity_row, rest)
        return out
