"""Fast XOR kernels on data blocks.

The dissertation's LT implementation gets its throughput from careful memory
XOR (long operands, register blocking, cache striping — §5.2.3 item 4).  In
Python the equivalent idiom is numpy: blocks are ``uint8`` arrays XORed
through ``uint64`` views so each vector op moves 8 bytes per lane, and large
buffers are processed in cache-sized stripes.
"""

from __future__ import annotations

import numpy as np

#: Stripe length (bytes) for cache-friendly XOR of very large buffers.
STRIPE_BYTES = 1 << 20


def as_u64(block: np.ndarray) -> np.ndarray:
    """View a uint8 block whose size is a multiple of 8 as uint64."""
    if block.dtype != np.uint8:
        raise TypeError("blocks must be uint8 arrays")
    if block.size % 8:
        raise ValueError("block size must be a multiple of 8 bytes")
    return block.view(np.uint64)


def xor_into(dst: np.ndarray, src: np.ndarray) -> None:
    """``dst ^= src`` in place, vectorised over uint64 lanes.

    Both blocks must be uint8, equal length, length divisible by 8.
    """
    if dst.shape != src.shape:
        raise ValueError(f"shape mismatch: {dst.shape} vs {src.shape}")
    d64, s64 = as_u64(dst), as_u64(src)
    n = d64.size
    if n * 8 <= STRIPE_BYTES:
        np.bitwise_xor(d64, s64, out=d64)
        return
    step = STRIPE_BYTES // 8
    for start in range(0, n, step):
        stop = start + step
        np.bitwise_xor(d64[start:stop], s64[start:stop], out=d64[start:stop])


def xor_reduce(blocks: np.ndarray, indices: np.ndarray | list[int]) -> np.ndarray:
    """Return the XOR of ``blocks[i]`` for ``i`` in ``indices``.

    ``blocks`` is a 2-D uint8 array (one row per block).  An empty index list
    yields a zero block.
    """
    if blocks.ndim != 2:
        raise ValueError("blocks must be a 2-D (n_blocks, block_len) array")
    idx = np.asarray(indices, dtype=np.intp)
    out = np.zeros(blocks.shape[1], dtype=np.uint8)
    if idx.size == 0:
        return out
    rows = blocks[idx].view(np.uint64)
    np.bitwise_xor.reduce(rows, axis=0, out=out.view(np.uint64))
    return out


def random_blocks(
    rng: np.random.Generator, n_blocks: int, block_len: int
) -> np.ndarray:
    """Generate ``n_blocks`` random uint8 data blocks of ``block_len`` bytes."""
    if block_len % 8:
        raise ValueError("block_len must be a multiple of 8")
    return rng.integers(0, 256, size=(n_blocks, block_len), dtype=np.uint8)


def blocks_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact equality of two block arrays."""
    return a.shape == b.shape and bool(np.array_equal(a, b))


def split_into_blocks(data: bytes | np.ndarray, block_len: int) -> np.ndarray:
    """Split a byte string into fixed-size blocks, zero-padding the tail.

    Returns a 2-D uint8 array of shape ``(ceil(len/block_len), block_len)``.
    """
    if block_len <= 0 or block_len % 8:
        raise ValueError("block_len must be a positive multiple of 8")
    buf = np.frombuffer(bytes(data), dtype=np.uint8) if not isinstance(data, np.ndarray) else data.astype(np.uint8, copy=False).ravel()
    n_blocks = max(1, -(-buf.size // block_len))
    out = np.zeros((n_blocks, block_len), dtype=np.uint8)
    out.ravel()[: buf.size] = buf
    return out


def join_blocks(blocks: np.ndarray, total_len: int | None = None) -> bytes:
    """Inverse of :func:`split_into_blocks` (optionally trimming padding)."""
    flat = np.ascontiguousarray(blocks).ravel()
    if total_len is not None:
        flat = flat[:total_len]
    return flat.tobytes()
