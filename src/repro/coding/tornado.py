"""Tornado codes: cascaded sparse bipartite graphs capped by an MDS code.

Background implementation of §2.2.3: a cascade ``B_0, B_1, ..., B_m, A``
where level ``i`` produces ``K * beta^(i+1)`` check symbols from the
previous level's symbols, and the last (smallest) level is protected by a
Reed-Solomon code.  The code word is the original symbols plus all check
symbols, giving overall rate ``1 - beta``.

This is a faithful, simple realisation (regular random graphs rather than
the carefully optimised irregular distributions of Luby et al. 1997); it
exists to let the test-suite and examples compare code families, not to be
the RobuSTore workhorse.
"""

from __future__ import annotations

import numpy as np

from repro.coding.reed_solomon import ReedSolomonCode
from repro.coding.xorblocks import xor_reduce


class TornadoCode:
    """Cascade erasure code C(B_0 .. B_m, A).

    Parameters
    ----------
    k:
        Number of original blocks.
    beta:
        Expansion ratio per level, 0 < beta < 1.  Each level ``i`` has
        ``round(k * beta**(i+1))`` check symbols.
    levels:
        Number of bipartite levels before the MDS cap.
    left_degree:
        Edges per message symbol in each bipartite graph.
    """

    def __init__(
        self,
        k: int,
        beta: float = 0.5,
        levels: int = 3,
        left_degree: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0 < beta < 1:
            raise ValueError("beta must be in (0, 1)")
        if k < 4:
            raise ValueError("k must be >= 4")
        self.k = k
        self.beta = beta
        self.left_degree = left_degree
        rng = rng or np.random.default_rng(0)

        # Level sizes: level i maps n_i message symbols -> n_{i+1} checks.
        sizes = [k]
        for _ in range(levels):
            nxt = max(1, int(round(sizes[-1] * beta)))
            sizes.append(nxt)
        self.sizes = sizes
        # Per level: for each check symbol, the message symbols feeding it.
        self.level_graphs: list[list[np.ndarray]] = []
        for lvl in range(levels):
            n_msg, n_chk = sizes[lvl], sizes[lvl + 1]
            # Spread left_degree edges from each message symbol to random checks.
            edges: list[list[int]] = [[] for _ in range(n_chk)]
            for msg in range(n_msg):
                for chk in rng.choice(n_chk, size=min(left_degree, n_chk), replace=False):
                    edges[int(chk)].append(msg)
            self.level_graphs.append([np.array(sorted(e), dtype=np.int64) for e in edges])

        # MDS cap over the last level's check symbols (rate 1 - beta).
        last = sizes[-1]
        cap_n = min(256, max(last + 1, int(round(last / (1 - beta)))))
        self.cap = ReedSolomonCode(last, cap_n)

    @property
    def n(self) -> int:
        """Total code-word length: originals + all checks + cap parity."""
        return self.k + sum(self.sizes[1:]) + (self.cap.n - self.cap.k)

    @property
    def rate(self) -> float:
        return self.k / self.n

    def encode(self, data_blocks: np.ndarray) -> np.ndarray:
        """Return the full code word (originals, per-level checks, cap parity)."""
        data_blocks = np.asarray(data_blocks, dtype=np.uint8)
        if data_blocks.shape[0] != self.k:
            raise ValueError(f"expected {self.k} blocks, got {data_blocks.shape[0]}")
        pieces = [data_blocks]
        current = data_blocks
        for graph in self.level_graphs:
            checks = np.empty((len(graph), data_blocks.shape[1]), dtype=np.uint8)
            for j, nb in enumerate(graph):
                checks[j] = xor_reduce(current, nb)
            pieces.append(checks)
            current = checks
        cap_out = self.cap.encode(current)
        pieces.append(cap_out[self.cap.k :])
        return np.vstack(pieces)

    def decode_erasures(
        self, present: np.ndarray, blocks: np.ndarray
    ) -> np.ndarray | None:
        """Recover the originals given a presence mask over the code word.

        Decodes back-to-front: first the MDS cap restores the last level,
        then each bipartite level is peeled to restore its message symbols.
        Returns ``None`` if recovery fails (too many erasures).
        """
        present = np.asarray(present, dtype=bool)
        if present.size != self.n:
            raise ValueError("presence mask must cover the whole code word")
        blocks = np.asarray(blocks, dtype=np.uint8)
        # Slice the code word into segments.
        seg_bounds = np.cumsum([self.k] + self.sizes[1:] + [self.cap.n - self.cap.k])
        segments = np.split(np.arange(self.n), seg_bounds[:-1])
        values = [np.zeros((len(seg), blocks.shape[1]), dtype=np.uint8) for seg in segments]
        known = [np.zeros(len(seg), dtype=bool) for seg in segments]
        for seg_i, seg in enumerate(segments):
            mask = present[seg]
            values[seg_i][mask] = blocks[seg][mask]
            known[seg_i][:] = mask

        # 1. MDS cap restores the deepest check level if enough pieces exist.
        last_i = len(self.sizes) - 1
        cap_ids = np.concatenate(
            [np.nonzero(known[last_i])[0], self.cap.k + np.nonzero(known[-1])[0]]
        )
        cap_vals = np.vstack([values[last_i][known[last_i]], values[-1][known[-1]]])
        if cap_ids.size >= self.cap.k:
            values[last_i] = self.cap.decode(cap_ids, cap_vals)
            known[last_i][:] = True

        # 2. Peel each level from deepest to shallowest.
        for lvl in range(len(self.level_graphs) - 1, -1, -1):
            graph = self.level_graphs[lvl]
            msg_vals, msg_known = values[lvl], known[lvl]
            chk_vals, chk_known = values[lvl + 1], known[lvl + 1]
            progress = True
            while progress and not msg_known.all():
                progress = False
                for j, nb in enumerate(graph):
                    if not chk_known[j]:
                        continue
                    unknown = nb[~msg_known[nb]]
                    if unknown.size == 1:
                        target = int(unknown[0])
                        acc = chk_vals[j].copy()
                        for other in nb:
                            if int(other) != target:
                                np.bitwise_xor(acc, msg_vals[int(other)], out=acc)
                        msg_vals[target] = acc
                        msg_known[target] = True
                        progress = True
            if not msg_known.all():
                return None
        return values[0]
