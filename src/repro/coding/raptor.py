"""Raptor codes: a high-rate pre-code concatenated with a weakened LT code.

Background implementation of §2.2.3 (Shokrollahi 2003): the K input symbols
are pre-encoded with a fixed-rate erasure code into m > K intermediate
symbols; a light LT code (constant average degree) then produces an
unlimited stream of output symbols.  Decoding first peels the LT layer to
recover *most* intermediate symbols, then the pre-code fills the holes.

We use a systematic Reed-Solomon pre-code over block groups so that the
construction stays exact for arbitrary K (GF(256) limits one RS word to 256
symbols; larger K is pre-coded in independent interleaved groups).
"""

from __future__ import annotations

import numpy as np

from repro.coding.lt import LTCode, LTGraph
from repro.coding.peeling import PeelingDecoder
from repro.coding.reed_solomon import ReedSolomonCode


class RaptorCode:
    """Raptor code = RS pre-code (rate ``precode_rate``) + weakened LT.

    Parameters
    ----------
    k:
        Number of input blocks.
    precode_rate:
        Rate of the pre-code; intermediate count m = ceil(k / rate).
    lt_c, lt_delta:
        Parameters of the inner LT code over the m intermediate symbols.
    group:
        Pre-code group width (<= 128 so each RS word fits GF(256)).
    """

    def __init__(
        self,
        k: int,
        precode_rate: float = 0.95,
        lt_c: float = 0.05,
        lt_delta: float = 0.5,
        group: int = 128,
    ) -> None:
        if not 0 < precode_rate < 1:
            raise ValueError("precode_rate must be in (0, 1)")
        if group > 128:
            raise ValueError("group must be <= 128 for the GF(256) pre-code")
        self.k = k
        self.group = min(group, k)
        self.groups = -(-k // self.group)
        per_group_parity = max(1, int(round(self.group * (1 / precode_rate - 1))))
        self.per_group_parity = per_group_parity
        self.m = k + self.groups * per_group_parity
        self._rs = ReedSolomonCode(self.group, self.group + per_group_parity)
        self.lt = LTCode(self.m, c=lt_c, delta=lt_delta)

    def build_graph(self, n: int, rng: np.random.Generator) -> LTGraph:
        """LT graph over the m intermediate symbols, n output symbols."""
        return self.lt.build_graph(n, rng)

    # -- data path ---------------------------------------------------------
    def precode(self, data_blocks: np.ndarray) -> np.ndarray:
        """Expand k input blocks into m intermediate blocks."""
        data_blocks = np.asarray(data_blocks, dtype=np.uint8)
        if data_blocks.shape[0] != self.k:
            raise ValueError(f"expected {self.k} blocks, got {data_blocks.shape[0]}")
        out = [data_blocks]
        for g in range(self.groups):
            seg = data_blocks[g * self.group : (g + 1) * self.group]
            if seg.shape[0] < self.group:  # zero-pad the ragged last group
                pad = np.zeros((self.group - seg.shape[0], seg.shape[1]), np.uint8)
                seg = np.vstack([seg, pad])
            coded = self._rs.encode(seg)
            out.append(coded[self.group :])
        return np.vstack(out)

    def encode(self, data_blocks: np.ndarray, graph: LTGraph) -> np.ndarray:
        """Full Raptor encode: pre-code then LT over intermediates."""
        inter = self.precode(data_blocks)
        return self.lt.encode(inter, graph)

    def decode(
        self,
        graph: LTGraph,
        coded_ids,
        coded_blocks: np.ndarray,
        block_len: int,
    ) -> np.ndarray | None:
        """Attempt reconstruction of the k input blocks.

        Returns ``None`` when the supplied blocks are insufficient.
        """
        decoder = PeelingDecoder(graph, block_len=block_len)
        coded_blocks = np.asarray(coded_blocks, dtype=np.uint8)
        for cid, payload in zip(coded_ids, coded_blocks):
            decoder.add(int(cid), payload)
            if decoder.is_complete:
                break

        if decoder.is_complete:
            return decoder.get_data()[: self.k]

        # LT peeling stalled: let the pre-code repair the holes per group.
        inter = decoder._data
        known = decoder._decoded
        if inter is None:
            return None
        result = np.zeros((self.k, block_len), dtype=np.uint8)
        for g in range(self.groups):
            data_lo = g * self.group
            data_hi = min(self.k, data_lo + self.group)
            parity_lo = self.k + g * self.per_group_parity
            ids = []
            vals = []
            for local, idx in enumerate(range(data_lo, data_lo + self.group)):
                if idx < self.k and known[idx]:
                    ids.append(local)
                    vals.append(inter[idx])
                elif idx >= self.k:  # zero-padded tail rows are always known
                    ids.append(local)
                    vals.append(np.zeros(block_len, dtype=np.uint8))
            for local in range(self.per_group_parity):
                idx = parity_lo + local
                if known[idx]:
                    ids.append(self.group + local)
                    vals.append(inter[idx])
            if len(ids) < self.group:
                return None
            decoded = self._rs.decode(np.array(ids), np.vstack(vals))
            result[data_lo:data_hi] = decoded[: data_hi - data_lo]
        return result

    def overhead_estimate(self) -> float:
        """Pre-code expansion m/k - 1 (the price of linear-time decoding)."""
        return self.m / self.k - 1.0
