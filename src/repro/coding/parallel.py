"""Parallel LT coding (§7.3 future work: "design parallel coding
algorithms ... use a cluster of workstations as a coding agent").

Within one process, LT encode/decode parallelises two ways:

* **by coded block** — each coded block's XOR is independent, so the
  encoder shards the coded-block range across a thread pool (numpy's
  ``bitwise_xor`` releases the GIL on large operands, so threads scale on
  the memory-bandwidth-bound kernel);
* **by stripe** — a single very large block is XORed in column stripes,
  each thread owning a byte range (the §5.2.3 "striping for XOR on large
  memory buffers" optimisation, parallelised).

Decoding stays sequential in graph order (the peeling ripple is a serial
dependency) but the per-resolution XOR work can use striped parallelism.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.coding.lt import LTCode, LTGraph
from repro.coding.xorblocks import xor_reduce


def coding_threads() -> int:
    """Worker count from the ``REPRO_CODING_THREADS`` environment switch.

    Read dynamically (not at import time) so tests and deployments can
    flip the switch per call; unset, empty or invalid values mean 1
    (sequential kernels).  Every threaded kernel in this module and the
    scheme data paths (:mod:`repro.core.codecs`,
    :class:`repro.coding.peeling.PeelingDecoder`) is byte-identical to
    its sequential counterpart, so the switch is purely about wall time.
    """
    try:
        return max(1, int(os.environ.get("REPRO_CODING_THREADS", "1")))
    except ValueError:
        return 1


def parallel_encode(
    code: LTCode,
    data_blocks: np.ndarray,
    graph: LTGraph,
    workers: int = 4,
) -> np.ndarray:
    """Encode with the coded-block range sharded over ``workers`` threads.

    Bit-identical to :meth:`repro.coding.lt.LTCode.encode`.
    """
    data_blocks = np.asarray(data_blocks, dtype=np.uint8)
    if data_blocks.shape[0] != code.k:
        raise ValueError(f"expected {code.k} original blocks")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    n = graph.n
    out = np.empty((n, data_blocks.shape[1]), dtype=np.uint8)

    def encode_range(lo: int, hi: int) -> None:
        for j in range(lo, hi):
            out[j] = xor_reduce(data_blocks, graph.neighbors[j])

    if workers == 1 or n < 2 * workers:
        encode_range(0, n)
        return out
    bounds = np.linspace(0, n, workers + 1).astype(int)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(encode_range, int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        for f in futures:
            f.result()  # propagate exceptions
    return out


def parallel_encode_ids(
    data_blocks: np.ndarray,
    graph: LTGraph,
    ids,
    workers: int | None = None,
) -> dict[int, np.ndarray]:
    """Encode only the coded blocks in ``ids``; return ``{id: payload}``.

    The stored-id counterpart of :func:`parallel_encode` (schemes store a
    placement-dependent subset of the graph, not a dense prefix).  Each
    coded block's XOR is independent, so sharding the id list over
    ``workers`` threads is byte-identical to sequential
    :meth:`repro.coding.lt.LTCode.encode_one` calls.  ``workers=None``
    reads :func:`coding_threads`.
    """
    if workers is None:
        workers = coding_threads()
    if workers < 1:
        raise ValueError("workers must be >= 1")
    data_blocks = np.asarray(data_blocks, dtype=np.uint8)
    ids = [int(b) for b in ids]
    out: dict[int, np.ndarray] = {}

    def encode_range(lo: int, hi: int) -> None:
        for b in ids[lo:hi]:
            out[b] = xor_reduce(data_blocks, graph.neighbors[b])

    if workers == 1 or len(ids) < 2 * workers:
        encode_range(0, len(ids))
        return out
    bounds = np.linspace(0, len(ids), workers + 1).astype(int)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(encode_range, int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        for f in futures:
            f.result()
    return out


def parallel_group_map(fn, n_groups: int, workers: int | None = None) -> list:
    """Run ``fn(g)`` for every group ``g`` and return results in group order.

    The grouped-RS data path's sharding primitive: each group's
    Reed-Solomon word is independent, so evaluating groups on a thread
    pool is byte-identical to the sequential loop — results land in a
    pre-sized list indexed by group, never in completion order.
    ``workers=None`` reads :func:`coding_threads`.
    """
    if workers is None:
        workers = coding_threads()
    if workers < 1:
        raise ValueError("workers must be >= 1")
    out: list = [None] * n_groups

    def run_range(lo: int, hi: int) -> None:
        for g in range(lo, hi):
            out[g] = fn(g)

    if workers == 1 or n_groups < 2:
        run_range(0, n_groups)
        return out
    bounds = np.linspace(0, n_groups, min(workers, n_groups) + 1).astype(int)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(run_range, int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        for f in futures:
            f.result()
    return out


def striped_xor_into(
    dst: np.ndarray, src: np.ndarray, workers: int = 4
) -> None:
    """``dst ^= src`` with byte-range stripes across threads.

    Useful for multi-MB blocks; small blocks fall back to the serial
    kernel (thread dispatch would dominate).
    """
    if dst.shape != src.shape:
        raise ValueError("shape mismatch")
    n = dst.size
    if workers <= 1 or n < 1 << 22:
        np.bitwise_xor(dst, src, out=dst)
        return
    bounds = np.linspace(0, n, workers + 1).astype(int)
    # Align stripe boundaries to 64 bytes for clean cache-line ownership.
    bounds = (bounds // 64) * 64
    bounds[-1] = n

    def stripe(lo: int, hi: int) -> None:
        np.bitwise_xor(dst[lo:hi], src[lo:hi], out=dst[lo:hi])

    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(stripe, int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        for f in futures:
            f.result()


def encode_throughput(
    code: LTCode,
    graph: LTGraph,
    block_len: int,
    workers: int,
    rng: np.random.Generator,
) -> float:
    """Measured encode throughput (bytes of source data per second)."""
    import time

    data = rng.integers(0, 256, size=(code.k, block_len), dtype=np.uint8)
    t0 = time.perf_counter()
    parallel_encode(code, data, graph, workers=workers)
    return code.k * block_len / (time.perf_counter() - t0)
