"""Parallel LT coding (§7.3 future work: "design parallel coding
algorithms ... use a cluster of workstations as a coding agent").

Within one process, LT encode/decode parallelises two ways:

* **by coded block** — each coded block's XOR is independent, so the
  encoder shards the coded-block range across a thread pool (numpy's
  ``bitwise_xor`` releases the GIL on large operands, so threads scale on
  the memory-bandwidth-bound kernel);
* **by stripe** — a single very large block is XORed in column stripes,
  each thread owning a byte range (the §5.2.3 "striping for XOR on large
  memory buffers" optimisation, parallelised).

Decoding stays sequential in graph order (the peeling ripple is a serial
dependency) but the per-resolution XOR work can use striped parallelism.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.coding.lt import LTCode, LTGraph
from repro.coding.xorblocks import xor_reduce


def parallel_encode(
    code: LTCode,
    data_blocks: np.ndarray,
    graph: LTGraph,
    workers: int = 4,
) -> np.ndarray:
    """Encode with the coded-block range sharded over ``workers`` threads.

    Bit-identical to :meth:`repro.coding.lt.LTCode.encode`.
    """
    data_blocks = np.asarray(data_blocks, dtype=np.uint8)
    if data_blocks.shape[0] != code.k:
        raise ValueError(f"expected {code.k} original blocks")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    n = graph.n
    out = np.empty((n, data_blocks.shape[1]), dtype=np.uint8)

    def encode_range(lo: int, hi: int) -> None:
        for j in range(lo, hi):
            out[j] = xor_reduce(data_blocks, graph.neighbors[j])

    if workers == 1 or n < 2 * workers:
        encode_range(0, n)
        return out
    bounds = np.linspace(0, n, workers + 1).astype(int)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(encode_range, int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        for f in futures:
            f.result()  # propagate exceptions
    return out


def striped_xor_into(
    dst: np.ndarray, src: np.ndarray, workers: int = 4
) -> None:
    """``dst ^= src`` with byte-range stripes across threads.

    Useful for multi-MB blocks; small blocks fall back to the serial
    kernel (thread dispatch would dominate).
    """
    if dst.shape != src.shape:
        raise ValueError("shape mismatch")
    n = dst.size
    if workers <= 1 or n < 1 << 22:
        np.bitwise_xor(dst, src, out=dst)
        return
    bounds = np.linspace(0, n, workers + 1).astype(int)
    # Align stripe boundaries to 64 bytes for clean cache-line ownership.
    bounds = (bounds // 64) * 64
    bounds[-1] = n

    def stripe(lo: int, hi: int) -> None:
        np.bitwise_xor(dst[lo:hi], src[lo:hi], out=dst[lo:hi])

    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(stripe, int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        for f in futures:
            f.result()


def encode_throughput(
    code: LTCode,
    graph: LTGraph,
    block_len: int,
    workers: int,
    rng: np.random.Generator,
) -> float:
    """Measured encode throughput (bytes of source data per second)."""
    import time

    data = rng.integers(0, 256, size=(code.k, block_len), dtype=np.uint8)
    t0 = time.perf_counter()
    parallel_encode(code, data, graph, workers=workers)
    return code.k * block_len / (time.perf_counter() - t0)
