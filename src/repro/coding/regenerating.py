"""Regenerating codes: the MSR/MBR points of the storage–repair tradeoff.

Dimakis et al. (PAPERS.md) showed that erasure-coded storage does not have
to read a whole object's worth of data to replace one lost node: codes on
the *minimum-storage* (MSR) and *minimum-bandwidth* (MBR) points of the
storage–repair-bandwidth tradeoff repair a node by moving ``d * beta``
symbols from ``d`` helpers — strictly less than the ``k * alpha`` an MDS
whole-object reconstruction transfers.  This module implements both
points with the exact product-matrix construction of Rashmi, Shah &
Kumar (2011) over the same GF(256) arithmetic the Reed-Solomon baseline
uses:

* :class:`ProductMatrixMBR` — any ``d >= k``; ``alpha = d``, ``beta = 1``,
  ``B = k*d - k*(k-1)/2`` message symbols per stripe.  Repair moves only
  ``d`` symbols for a node storing ``d`` — minimum bandwidth, at the cost
  of storing more than ``B/k`` per node.
* :class:`ProductMatrixMSR` — ``d = 2k - 2``; ``alpha = k - 1``,
  ``beta = 1``, ``B = k*(k-1)``.  Per-node storage equals the MDS optimum
  ``B/k``, so the storage overhead matches an ``(n, k)`` Reed-Solomon
  code, while repair moves ``d = 2(k-1)`` symbols instead of ``B = k(k-1)``.

Both codes are *exact*: repair regenerates bit-identically the symbols
the failed node stored, and any ``k`` nodes decode the original message.
Symbols are byte vectors (whole simulator blocks); all linear algebra is
per byte position, vectorised through :func:`repro.coding.gf256.gf_matmul`.
"""

from __future__ import annotations

import numpy as np

from repro.coding.gf256 import MUL, gf_mat_inv, gf_matmul, gf_pow


def mbr_point(file_symbols: int, k: int, d: int) -> tuple[float, float]:
    """Theoretical MBR point: (per-node storage, repair bandwidth).

    Both in symbols, for a file of ``file_symbols``; at MBR the repair
    bandwidth *equals* the per-node storage (nothing stored is redundant
    to a repair).
    """
    alpha = 2.0 * file_symbols * d / (k * (2 * d - k + 1))
    return alpha, alpha


def msr_point(file_symbols: int, k: int, d: int) -> tuple[float, float]:
    """Theoretical MSR point: (per-node storage, repair bandwidth)."""
    alpha = file_symbols / k
    gamma = file_symbols * d / (k * (d - k + 1))
    return alpha, gamma


def _mm(A: np.ndarray, T: np.ndarray) -> np.ndarray:
    """Left-multiply tensor ``T`` (first axis contracted) by scalar matrix ``A``."""
    out_shape = (A.shape[0],) + T.shape[1:]
    if 0 in out_shape or A.shape[1] == 0:
        # Degenerate block (e.g. MBR at d == k has an empty S2): the GF
        # kernel rejects zero-size operands, but the product is just zeros.
        return np.zeros(out_shape, dtype=np.uint8)
    flat = T.reshape(T.shape[0], -1)
    return gf_matmul(A, flat).reshape(out_shape)


def _mm_right(T: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Right-multiply tensor ``T`` (second axis contracted) by scalar ``B``."""
    swapped = _mm(B.T, T.swapaxes(0, 1))
    return swapped.swapaxes(0, 1)


def _tdot(vec: np.ndarray, T: np.ndarray) -> np.ndarray:
    """GF inner product of scalar ``vec`` with tensor ``T`` along axis 0."""
    return _mm(vec.reshape(1, -1), T)[0]


class _ProductMatrixBase:
    """Shared geometry and parameter validation for the two PM codes."""

    mode: str

    def __init__(self, k: int, d: int, n: int) -> None:
        if k < 2:
            raise ValueError("product-matrix codes need k >= 2")
        if d < k:
            raise ValueError("repair degree d must be >= k")
        if n <= d:
            raise ValueError("need n > d so d helpers survive one failure")
        if n > 255:
            raise ValueError("GF(256) supports at most 255 nodes")
        self.k = int(k)
        self.d = int(d)
        self.n = int(n)

    # -- symmetric-matrix packing ---------------------------------------------
    @staticmethod
    def _upper_count(m: int) -> int:
        return m * (m + 1) // 2

    @staticmethod
    def _fill_symmetric(m: int, symbols: np.ndarray, start: int) -> tuple[np.ndarray, int]:
        """Pack ``m*(m+1)/2`` symbols into an (m, m, L) symmetric tensor."""
        L = symbols.shape[1]
        out = np.zeros((m, m, L), dtype=np.uint8)
        idx = start
        for i in range(m):
            for j in range(i, m):
                out[i, j] = symbols[idx]
                out[j, i] = symbols[idx]
                idx += 1
        return out, idx

    @staticmethod
    def _read_symmetric(S: np.ndarray) -> list[np.ndarray]:
        m = S.shape[0]
        return [S[i, j] for i in range(m) for j in range(i, m)]

    def _check_message(self, message: np.ndarray) -> np.ndarray:
        message = np.asarray(message, dtype=np.uint8)
        if message.ndim != 2 or message.shape[0] != self.B:
            raise ValueError(
                f"message must be ({self.B}, L); got {message.shape}"
            )
        return message

    def _helper_matrix(self, helper_ids) -> np.ndarray:
        helper_ids = [int(h) for h in helper_ids]
        if len(set(helper_ids)) != self.d:
            raise ValueError(f"repair needs exactly d={self.d} distinct helpers")
        return gf_mat_inv(self.psi[helper_ids, :])


class ProductMatrixMBR(_ProductMatrixBase):
    """Exact product-matrix MBR code (Rashmi-Shah-Kumar §IV).

    Message matrix ``M`` is ``d x d`` symmetric::

        M = [[S1, S2], [S2^T, 0]]

    with ``S1`` a ``k x k`` symmetric block and ``S2`` a ``k x (d-k)``
    block, carrying ``B = k*d - k*(k-1)/2`` symbols.  Node ``i`` stores
    ``psi_i^T M`` (``alpha = d`` symbols) for Vandermonde rows ``psi_i``.
    """

    mode = "mbr"

    def __init__(self, k: int, d: int, n: int) -> None:
        super().__init__(k, d, n)
        self.alpha = self.d
        self.beta = 1
        self.B = self.k * self.d - self._upper_count(self.k - 1)
        # psi_i = (1, x_i, x_i^2, ..., x_i^(d-1)) with distinct x_i: any d
        # rows of Psi (and any k rows of its first k columns) invertible.
        xs = np.arange(1, self.n + 1, dtype=np.uint8)
        self.psi = np.stack(
            [np.array([gf_pow(int(x), j) for j in range(self.d)], np.uint8) for x in xs]
        )

    def _message_matrix(self, message: np.ndarray) -> np.ndarray:
        message = self._check_message(message)
        k, d, L = self.k, self.d, message.shape[1]
        M = np.zeros((d, d, L), dtype=np.uint8)
        S1, idx = self._fill_symmetric(k, message, 0)
        M[:k, :k] = S1
        for i in range(k):
            for j in range(d - k):
                M[i, k + j] = message[idx]
                M[k + j, i] = message[idx]
                idx += 1
        return M

    def encode(self, message: np.ndarray) -> np.ndarray:
        """All node contents, shape ``(n, alpha, L)``."""
        return _mm(self.psi, self._message_matrix(message))

    def node_content(self, node_id: int, message: np.ndarray) -> np.ndarray:
        return self.encode(message)[int(node_id)]

    def decode(self, node_ids, contents: np.ndarray) -> np.ndarray:
        """Original ``(B, L)`` message from any ``k`` node contents."""
        node_ids = [int(i) for i in node_ids]
        if len(set(node_ids)) != self.k:
            raise ValueError(f"decode needs exactly k={self.k} distinct nodes")
        R = np.asarray(contents, dtype=np.uint8)
        k = self.k
        phi_inv = gf_mat_inv(self.psi[node_ids, :k])
        delta = self.psi[node_ids, k:]
        # Second chunk: R[:, k:] = Phi S2.
        S2 = _mm(phi_inv, R[:, k:])
        # First chunk: R[:, :k] = Phi S1 + Delta S2^T.
        S1 = _mm(phi_inv, R[:, :k] ^ _mm(delta, S2.swapaxes(0, 1)))
        symbols = self._read_symmetric(S1)
        symbols.extend(S2[i, j] for i in range(k) for j in range(self.d - k))
        return np.stack(symbols)

    def helper_symbol(
        self, helper_content: np.ndarray, failed_id: int
    ) -> np.ndarray:
        """The ``beta = 1`` symbol one helper sends for a repair."""
        return _tdot(self.psi[int(failed_id)], np.asarray(helper_content, np.uint8))

    def repair(self, failed_id: int, helper_ids, symbols: np.ndarray) -> np.ndarray:
        """Rebuild node ``failed_id`` from ``d`` helper symbols, exactly."""
        stacked = np.asarray(symbols, dtype=np.uint8)  # (d, L) = Psi_H M psi_f
        m_psi = _mm(self._helper_matrix(helper_ids), stacked)  # M psi_f
        # M is symmetric, so the lost content psi_f^T M is (M psi_f)^T.
        return m_psi


class ProductMatrixMSR(_ProductMatrixBase):
    """Exact product-matrix MSR code at ``d = 2k - 2`` (Rashmi-Shah-Kumar §V).

    Message matrix ``M = [[S1], [S2]]`` stacks two symmetric
    ``(k-1) x (k-1)`` blocks (``B = k*(k-1)`` symbols); the encoding
    matrix is ``Psi = [Phi | Lambda Phi]`` with Vandermonde ``Phi`` and
    ``lambda_i = x_i^(k-1)`` all distinct.  Per-node storage is the MDS
    optimum ``alpha = B/k = k-1``.
    """

    mode = "msr"

    def __init__(self, k: int, n: int, d: int | None = None) -> None:
        d = 2 * k - 2 if d is None else int(d)
        if d != 2 * k - 2:
            raise ValueError("the product-matrix MSR construction needs d = 2k-2")
        super().__init__(k, d, n)
        self.alpha = self.k - 1
        self.beta = 1
        self.B = self.k * (self.k - 1)
        # Greedily pick x_i keeping lambda_i = x_i^(k-1) distinct (powers
        # of a non-coprime exponent can collide in GF(256)*).
        xs: list[int] = []
        lams: set[int] = set()
        for cand in range(1, 256):
            lam = gf_pow(cand, self.k - 1)
            if lam in lams:
                continue
            xs.append(cand)
            lams.add(lam)
            if len(xs) == self.n:
                break
        if len(xs) < self.n:
            raise ValueError(
                f"GF(256) admits only {len(xs)} nodes at k={self.k} (asked {self.n})"
            )
        self.lam = np.array([gf_pow(x, self.k - 1) for x in xs], np.uint8)
        self.phi = np.stack(
            [
                np.array([gf_pow(x, j) for j in range(self.alpha)], np.uint8)
                for x in xs
            ]
        )
        # psi_i = (phi_i | lambda_i * phi_i) = (1, x, ..., x^(d-1)).
        self.psi = np.concatenate([self.phi, MUL[self.lam[:, None], self.phi]], axis=1)

    def _message_matrix(self, message: np.ndarray) -> np.ndarray:
        message = self._check_message(message)
        a = self.alpha
        S1, idx = self._fill_symmetric(a, message, 0)
        S2, _ = self._fill_symmetric(a, message, idx)
        return np.concatenate([S1, S2], axis=0)

    def encode(self, message: np.ndarray) -> np.ndarray:
        """All node contents, shape ``(n, alpha, L)``."""
        return _mm(self.psi, self._message_matrix(message))

    def node_content(self, node_id: int, message: np.ndarray) -> np.ndarray:
        return self.encode(message)[int(node_id)]

    def decode(self, node_ids, contents: np.ndarray) -> np.ndarray:
        """Original ``(B, L)`` message from any ``k`` node contents."""
        node_ids = [int(i) for i in node_ids]
        if len(set(node_ids)) != self.k:
            raise ValueError(f"decode needs exactly k={self.k} distinct nodes")
        R = np.asarray(contents, dtype=np.uint8)
        k, a, L = self.k, self.alpha, R.shape[2]
        phi = self.phi[node_ids]          # (k, a)
        lam = self.lam[node_ids]          # (k,)
        # C[i, j] = row_i . phi_j = P_ij ^ lam_i Q_ij, with P = Phi S1 Phi^T
        # and Q = Phi S2 Phi^T both symmetric.
        C = _mm_right(R, phi.T)           # (k, k, L)
        P = np.zeros((k, k, L), np.uint8)
        Q = np.zeros((k, k, L), np.uint8)
        for i in range(k):
            for j in range(i + 1, k):
                dl = int(lam[i]) ^ int(lam[j])
                q = MUL[int(gf_mat_inv(np.array([[dl]], np.uint8))[0, 0]), C[i, j] ^ C[j, i]]
                Q[i, j] = q
                Q[j, i] = q
                P[i, j] = C[i, j] ^ MUL[int(lam[i]), q]
                P[j, i] = P[i, j]
        # Per node i, the off-diagonal rows give Phi_{-i} (S? phi_i): solve
        # the (k-1) x (k-1) Vandermonde system for S1 phi_i and S2 phi_i.
        U = np.zeros((a, k, L), np.uint8)  # columns: S1 phi_i
        V = np.zeros((a, k, L), np.uint8)  # columns: S2 phi_i
        for i in range(k):
            others = [j for j in range(k) if j != i]
            A_inv = gf_mat_inv(phi[others])
            U[:, i] = _mm(A_inv, P[others, i])
            V[:, i] = _mm(A_inv, Q[others, i])
        # S? [phi_{i1} ... phi_{ia}] = [v_{i1} ... v_{ia}] for any a of the
        # k columns: right-multiply by the inverse of Phi_sub^T.
        sub_inv = gf_mat_inv(phi[:a].T)
        S1 = _mm_right(U[:, :a], sub_inv)
        S2 = _mm_right(V[:, :a], sub_inv)
        return np.stack(self._read_symmetric(S1) + self._read_symmetric(S2))

    def helper_symbol(
        self, helper_content: np.ndarray, failed_id: int
    ) -> np.ndarray:
        """The ``beta = 1`` symbol one helper sends: ``psi_h^T M phi_f``."""
        return _tdot(self.phi[int(failed_id)], np.asarray(helper_content, np.uint8))

    def repair(self, failed_id: int, helper_ids, symbols: np.ndarray) -> np.ndarray:
        """Rebuild node ``failed_id`` from ``d`` helper symbols, exactly."""
        f = int(failed_id)
        stacked = np.asarray(symbols, dtype=np.uint8)      # Psi_H M phi_f
        m_phi = _mm(self._helper_matrix(helper_ids), stacked)  # (d, L) = [S1 phi_f; S2 phi_f]
        s1_phi = m_phi[: self.alpha]
        s2_phi = m_phi[self.alpha:]
        # Lost content: phi_f^T S1 + lam_f phi_f^T S2 = (S1 phi_f)^T + lam_f (S2 phi_f)^T.
        return s1_phi ^ MUL[int(self.lam[f]), s2_phi]


#: Construction memo: the Vandermonde/Phi matrices depend only on the
#: parameters, so schemes and repair passes share one instance per shape.
_CODE_MEMO: dict[tuple[str, int, int, int], _ProductMatrixBase] = {}


def product_matrix_code(mode: str, k: int, d: int, n: int) -> _ProductMatrixBase:
    """Shared :class:`ProductMatrixMSR` / :class:`ProductMatrixMBR` instance."""
    key = (mode, int(k), int(d), int(n))
    code = _CODE_MEMO.get(key)
    if code is None:
        if mode == "msr":
            code = ProductMatrixMSR(k, n, d=d)
        elif mode == "mbr":
            code = ProductMatrixMBR(k, d, n)
        else:
            raise ValueError(f"unknown regenerating mode {mode!r}")
        _CODE_MEMO[key] = code
    return code
