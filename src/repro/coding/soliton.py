"""Degree distributions for LT codes (Luby 2002, §2.2.3 of the dissertation).

The robust soliton distribution is parameterised by ``c`` (written ``C`` in
the dissertation's figures) and ``delta``; it adds a spike at degree K/R and
extra mass at degree 1 on top of the ideal soliton, where
R = c * ln(K / delta) * sqrt(K).
"""

from __future__ import annotations

import math

import numpy as np


def ideal_soliton(k: int) -> np.ndarray:
    """Ideal soliton distribution rho over degrees 1..k.

    rho(1) = 1/k, rho(i) = 1 / (i (i-1)) for i >= 2.

    Returns an array of length ``k + 1``; index 0 is unused (zero).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rho = np.zeros(k + 1, dtype=np.float64)
    rho[1] = 1.0 / k
    if k >= 2:
        i = np.arange(2, k + 1, dtype=np.float64)
        rho[2:] = 1.0 / (i * (i - 1.0))
    return rho


def robust_soliton(k: int, c: float = 0.1, delta: float = 0.5) -> np.ndarray:
    """Robust soliton distribution mu over degrees 1..k.

    Parameters
    ----------
    k:
        Number of input symbols (word length).
    c:
        Luby's constant ``c > 0`` (the dissertation's ``C``).  Larger values
        enlarge R, putting more mass on low degrees: cheaper decoding but
        higher reception overhead.
    delta:
        Failure-probability bound ``0 < delta < 1``; smaller values thicken
        the spike, lowering overhead at higher CPU cost.

    Returns
    -------
    numpy.ndarray
        Probabilities over degrees, length ``k + 1`` (index 0 unused).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if c <= 0:
        raise ValueError("c must be positive")
    if not (0 < delta < 1):
        raise ValueError("delta must be in (0, 1)")

    rho = ideal_soliton(k)
    tau = np.zeros(k + 1, dtype=np.float64)
    r = c * math.log(k / delta) * math.sqrt(k)
    spike = int(round(k / r)) if r > 0 else k
    spike = max(1, min(k, spike))
    if spike > 1:
        i = np.arange(1, spike, dtype=np.float64)
        tau[1:spike] = r / (i * k)
    tau[spike] += r * math.log(r / delta) / k if r > delta else 0.0

    mu = rho + tau
    beta = mu.sum()
    return mu / beta


def expected_degree(dist: np.ndarray) -> float:
    """Mean node degree under a degree distribution."""
    degrees = np.arange(dist.size, dtype=np.float64)
    return float(np.dot(degrees, dist))


def sample_degrees(
    dist: np.ndarray, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``n`` degrees i.i.d. from ``dist`` (vectorised inverse-CDF)."""
    cdf = np.cumsum(dist)
    cdf[-1] = 1.0  # guard against round-off
    u = rng.random(n)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)
