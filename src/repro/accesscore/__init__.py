"""The access-core: one set of access semantics, two engine wrappers.

This package is the single home of the §4.1.2/§6.2.2 access timeline —
metadata open, per-disk request routing through the link/fault timelines,
block service, arrival-ordered tracker consumption, cancel accounting and
decode-tail charging.  Two engines *wrap* it without duplicating it:

* the **closed-form engine** (the :mod:`repro.core.policy` dispatchers)
  evaluates the core's timeline vectorised — :func:`timeline.serve_read_queues`
  builds per-disk :class:`timeline.DiskStream` objects in one shot and
  :func:`timeline.read_epilogue` settles completion, cancel accounting,
  tracing and repair annotation;
* the **event-driven engine** (:mod:`repro.accesscore.events`, surfaced as
  :mod:`repro.core.reference`) runs the same objects as discrete-event
  processes on the :mod:`repro.sim` kernel and hands its per-disk streams
  to the *same* epilogue.

Single wiring sites (the unification contract):

* link/fault routing — :mod:`repro.accesscore.routing`
  (``request_arrival_time`` / ``response_arrival_times``), plus
  :func:`events.attach_faults` for the one DES fault-pump attachment;
* scheme-level read tracing — :mod:`repro.accesscore.tracing` via
  :func:`timeline.read_epilogue`;
* repair triggering — :func:`repro.accesscore.repair.annotate_repair`.

Layering rule: ``accesscore`` never imports :mod:`repro.core` — policy
objects (completion/reaction/write singletons) are passed in and duck-typed,
which is what lets both engines share one epilogue without an import cycle.
The legacy import paths ``repro.core.access`` and ``repro.core.trackers``
remain as re-export shims.
"""
