"""Request/response routing and fixed access costs — one wiring site.

Every message an access sends — the open, the per-disk request, the block
payloads, the cancel — crosses the network through these helpers, which
route through the link's fault timeline when one is active.  Both engines
(closed-form and event-driven) call the same two functions, so link
degradation and filer-crash blackouts are wired into the simulator exactly
once.
"""

from __future__ import annotations

MB = 1 << 20

#: LT decode bandwidth used to charge the decode tail (§6.2.5: "we use
#: [500 MBps] to compute decode times").
DECODE_BANDWIDTH_BPS = 500e6


def request_arrival_time(cluster, disk_id: int, t_send: float, one_way_s: float) -> float:
    """When a request sent at ``t_send`` reaches the disk's filer.

    Routes through the link's fault timeline when one is active (added
    latency inside a degradation window, deferral across a filer-crash
    blackout); otherwise the plain one-way hop — same arithmetic, so
    unfaulted runs stay bit-identical.
    """
    lt = cluster.link_timeline(disk_id)
    if lt is None:
        return t_send + one_way_s
    return lt.request_arrival(t_send, one_way_s)


def response_arrival_times(cluster, disk_id: int, ready, one_way_s: float):
    """Client arrival time(s) for payload(s) ready at the filer at ``ready``."""
    lt = cluster.link_timeline(disk_id)
    if lt is None:
        return ready + one_way_s
    return lt.response_arrivals(ready, one_way_s)


def decode_tail_s(block_bytes: int) -> float:
    """Latency charged for decoding the final block (§6.2.5)."""
    return block_bytes / DECODE_BANDWIDTH_BPS


def open_latency_s(metadata) -> float:
    """Metadata + connection setup cost at access start."""
    return metadata.latency_s if metadata is not None else 0.005
