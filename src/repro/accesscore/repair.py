"""Repair triggering — the access-core's single wiring site.

A read that observes degraded redundancy flags the file for background
rebuild (§5.2.2): when permanent fail-stops push the file's surviving
redundancy below a floor fraction of the configured degree, the result's
extras carry ``repair_triggered`` and the tracer counts the event.
Both engines settle reads through :func:`annotate_repair` (via the
reaction policy's ``annotate`` hook), so the trigger rule and its trace
events exist exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.faults.inject import surviving_blocks


def annotate_repair(scheme, record, extra, t_done, t0, floor: float):
    """Annotate ``extra`` with surviving redundancy and the repair flag.

    ``floor`` is the triggering fraction (the reaction policy resolves the
    per-scheme override before calling).  No-op without a fault injector —
    fault-free runs never pay for the survival scan.
    """
    injector = scheme.cluster.faults
    if injector is None:
        return None
    cfg = scheme.config
    surviving = surviving_blocks(injector, record)
    surv_red = surviving / cfg.k - 1.0
    extra["surviving_redundancy"] = surv_red
    extra["repair_triggered"] = bool(surv_red < floor * cfg.redundancy)
    tracer = scheme.tracer
    if extra["repair_triggered"] and tracer.enabled:
        tracer.count("scheme.repairs_triggered")
        tracer.instant(
            "scheme.repair_trigger",
            "scheme",
            t_done if np.isfinite(t_done) else t0,
            track="scheme",
            args={"surviving_redundancy": surv_red},
        )
    return None
