"""Repair triggering — the access-core's single wiring site.

A read that observes degraded redundancy flags the file for background
rebuild (§5.2.2): when permanent fail-stops push the file's surviving
redundancy below a floor fraction of the configured degree, the result's
extras carry ``repair_triggered`` and the tracer counts the event.
Both engines settle reads through :func:`annotate_repair` (via the
reaction policy's ``annotate`` hook), so the trigger rule and its trace
events exist exactly once — and a :class:`repro.rebuild.RepairLedger`
installed on the cluster (``cluster.repair_ledger``) sees every degraded
read here, covering both engines from the same site.
"""

from __future__ import annotations

import numpy as np

from repro.faults.inject import surviving_blocks

#: Trigger fraction used when a scheme declares no floor of its own
#: (matches :class:`repro.core.policy.reaction.Respeculate`'s default).
DEFAULT_REPAIR_FLOOR = 0.5


def repair_trigger_state(scheme, record, floor: float):
    """The repair-trigger rule, computed once for every consumer.

    Returns ``(surviving_redundancy, triggered)``, or ``None`` without a
    fault injector — fault-free runs never pay for the survival scan.
    Shared by :func:`annotate_repair` (reads annotating their extras) and
    :func:`repro.core.repair.maybe_repair` (fault notifications for
    schemes whose reaction policy does not annotate).

    The trigger target is the redundancy the file actually carries on
    disk (``blocks_placed / k - 1``), not the configured degree: coding
    geometries quantize expansion (a regenerating stripe rounds its node
    count; a trimmed speculative write lands short), and repair urgency
    is about losing what *was* provisioned.
    """
    injector = scheme.cluster.faults
    if injector is None:
        return None
    surviving = surviving_blocks(injector, record)
    k = scheme.config.k
    provisioned = sum(len(p) for p in record.placement) / k - 1.0
    surv_red = surviving / k - 1.0
    return surv_red, bool(surv_red < floor * provisioned)


def annotate_repair(scheme, record, extra, t_done, t0, floor: float):
    """Annotate ``extra`` with surviving redundancy and the repair flag.

    ``floor`` is the triggering fraction (the reaction policy resolves the
    per-scheme override before calling).  No-op without a fault injector.
    """
    state = repair_trigger_state(scheme, record, floor)
    if state is None:
        return None
    surv_red, triggered = state
    extra["surviving_redundancy"] = surv_red
    extra["repair_triggered"] = triggered
    if triggered:
        ledger = getattr(scheme.cluster, "repair_ledger", None)
        if ledger is not None:
            ledger.note_degraded_read(
                float(t_done) if np.isfinite(t_done) else float("inf"), surv_red
            )
    tracer = scheme.tracer
    if triggered and tracer.enabled:
        tracer.count("scheme.repairs_triggered")
        tracer.instant(
            "scheme.repair_trigger",
            "scheme",
            t_done if np.isfinite(t_done) else t0,
            track="scheme",
            args={"surviving_redundancy": surv_red},
        )
    return None
