"""The access timeline: serve, consume, cancel, account — engine-shared.

Implements the speculative-access timeline of §4.1.2/§6.2.2:

1. open: metadata access (constant 5 ms);
2. one request message per disk (one-way link latency);
3. each disk serves its stored blocks in order (filesystem-cache hits are
   served by the filer immediately); background workloads interleave;
4. block payloads travel back (one-way latency, plentiful bandwidth);
5. the client consumes arrivals in order until the scheme's completion
   tracker is satisfied (all blocks / replica coverage / LT decode);
6. a cancel message (one-way latency) stops still-queued blocks; blocks
   already served or in flight count toward the I/O-overhead metric.

The closed-form engine evaluates steps 2-4 vectorised
(:func:`serve_read_queues`); the event-driven engine
(:mod:`repro.accesscore.events`) produces the same per-disk
:class:`DiskStream` records from explicit processes.  Steps 5-6 — tracker
consumption, cancel accounting, tracing, repair annotation — are shared
outright: both engines settle a read through :func:`read_epilogue`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accesscore.result import AccessResult
from repro.accesscore.routing import request_arrival_time, response_arrival_times
from repro.accesscore.tracing import _sample_indices, trace_read_access
from repro.disk.service import served_before


@dataclass
class DiskStream:
    """One disk's contribution to an access."""

    disk_id: int
    block_ids: np.ndarray          # stored order
    cached: np.ndarray             # mask aligned with block_ids
    completions: np.ndarray        # disk completion time of uncached blocks
    arrivals: np.ndarray           # client arrival time, aligned w/ block_ids
    one_way_s: float


def serve_read_queues(
    cluster,
    disk_ids,
    placement: list[list[int]],
    block_bytes: int,
    t_send: float,
    rng_for,
    file_name: str = "",
) -> list[DiskStream]:
    """Run every disk's stored queue; return per-disk streams.

    ``rng_for(disk_id)`` supplies each disk's random stream.  Cached blocks
    are served by the filer at request-arrival time; the rest queue at the
    disk in stored order.
    """
    streams: list[DiskStream] = []
    tracer = cluster.tracer
    phase_rng_for = getattr(rng_for, "phase_rng_for", None)
    for idx, disk_id in enumerate(disk_ids):
        disk_id = int(disk_id)
        filer = cluster.filer_of_disk(disk_id)
        blocks = np.asarray(placement[idx], dtype=np.int64)
        one_way = filer.link.one_way_s
        t_arrive = request_arrival_time(cluster, disk_id, t_send, one_way)
        cached = filer.cached_blocks(file_name, blocks)
        n_cached = int(np.count_nonzero(cached))
        n_uncached = blocks.size - n_cached
        svc = cluster.block_service(
            disk_id, rng_for(disk_id), phase_rng_for=phase_rng_for
        )
        completions = svc.serve(n_uncached, block_bytes, t_arrive)
        if n_cached == 0:
            # Common case (cold filesystem cache): every block queues at
            # the disk — same values as the masked assignment below.
            arrivals = np.asarray(
                response_arrival_times(cluster, disk_id, completions, one_way),
                dtype=np.float64,
            )
        else:
            arrivals = np.empty(blocks.size, dtype=np.float64)
            arrivals[cached] = response_arrival_times(
                cluster, disk_id, t_arrive, one_way
            )
            arrivals[~cached] = response_arrival_times(
                cluster, disk_id, completions, one_way
            )
        if tracer.enabled:
            tracer.span(
                "filer.request",
                "filer",
                t_send,
                t_arrive,
                track="filer",
                args={"disk": disk_id, "blocks": int(blocks.size)},
            )
            last = float(completions[-1]) if completions.size else t_arrive
            if np.isfinite(last):
                tracer.span(
                    "drive.queue",
                    "drive",
                    t_arrive,
                    last,
                    track="drive",
                    args={
                        "disk": disk_id,
                        "queued": n_uncached,
                        "cached": int(blocks.size) - n_uncached,
                    },
                )
                for i in _sample_indices(completions.size):
                    tracer.counter(
                        "drive.queue_depth",
                        float(completions[i]),
                        n_uncached - (i + 1),
                        track="drive",
                    )
                if tracer.detail and completions.size:
                    starts = np.concatenate([[t_arrive], completions[:-1]])
                    for bid, t0b, t1b in zip(
                        blocks[~cached], starts, completions
                    ):
                        tracer.span(
                            "drive.block",
                            "drive",
                            float(t0b),
                            float(t1b),
                            track=f"disk{disk_id}",
                            args={"block": int(bid)},
                        )
        streams.append(
            DiskStream(disk_id, blocks, cached, completions, arrivals, one_way)
        )
    return streams


def merged_arrival_order(
    streams: list[DiskStream],
    block_bytes: int = 0,
    client_bandwidth_bps: float = float("inf"),
) -> tuple[np.ndarray, np.ndarray]:
    """All (arrival time, block id) pairs across disks, time-sorted.

    With a finite client NIC rate, consecutive arrivals additionally
    serialise through the access link: arrival i completes no earlier than
    one block-transfer after arrival i-1 finished draining.
    """
    if not streams:
        return np.empty(0), np.empty(0, dtype=np.int64)
    times = np.concatenate([s.arrivals for s in streams])
    ids = np.concatenate([s.block_ids for s in streams])
    order = np.argsort(times, kind="stable")
    times, ids = times[order], ids[order]
    if np.isfinite(client_bandwidth_bps) and block_bytes > 0 and times.size:
        xfer = block_bytes / client_bandwidth_bps
        drained = np.empty_like(times)
        prev = -np.inf
        for i, t in enumerate(times):
            prev = max(t, prev + xfer) if np.isfinite(t) else t
            drained[i] = prev
        times = drained
    return times, ids


def consume_sorted_arrivals(tracker, times: np.ndarray, ids: np.ndarray) -> tuple[float, int]:
    """Feed a time-sorted arrival vector to ``tracker``.

    Returns ``(t_fill, consumed)`` — ``(inf, len)`` when the vector never
    completes the tracker.  The one consumption loop behind both closed-form
    dispatchers: trackers exposing a batched ``consume_arrivals`` take the
    vectorised fast path; the rest run the scalar ``observe``/``add`` loop.

    The class-level lookup is on purpose: recording/tracing proxies that
    forward attribute access to an inner tracker must keep the scalar loop,
    or their ``observe()`` hook would be silently bypassed.
    """
    consume = getattr(type(tracker), "consume_arrivals", None)
    if consume is not None and times.size:
        # Batched fast path (AllBlocks/Coverage trackers): same
        # (t_fill, consumed) as the scalar loop, proven element-for-element
        # by tests/test_trackers_batch.py.
        return consume(tracker, times, ids)
    observe = getattr(tracker, "observe", None)
    for consumed, (t, bid) in enumerate(zip(times, ids), start=1):
        if observe is not None:
            observe(float(t), int(bid))
        else:
            tracker.add(int(bid))
        if tracker.complete:
            return float(t), consumed
    return float("inf"), int(times.size)


def completion_time(
    streams: list[DiskStream],
    tracker,
    block_bytes: int = 0,
    client_bandwidth_bps: float = float("inf"),
) -> tuple[float, int]:
    """Feed arrivals to ``tracker``; return (finish time, blocks consumed).

    Returns ``(inf, consumed)`` if the access can never complete with the
    queued blocks (insufficient redundancy reached the disks).
    """
    t, consumed, _ = completion_with_order(
        streams, tracker, block_bytes, client_bandwidth_bps
    )
    return t, consumed


def completion_with_order(
    streams: list[DiskStream],
    tracker,
    block_bytes: int = 0,
    client_bandwidth_bps: float = float("inf"),
) -> tuple[float, int, list[int]]:
    """Like :func:`completion_time` but also returns the consumed block ids
    in arrival order (the data-path API replays real decoding with them).

    Trackers exposing ``observe(t, block_id)`` (the
    :class:`repro.accesscore.trackers.TrackerBase` hook) are fed the arrival
    time too; plain ``add``-only trackers keep working unchanged.
    """
    times, ids = merged_arrival_order(streams, block_bytes, client_bandwidth_bps)
    t_fill, consumed = consume_sorted_arrivals(tracker, times, ids)
    if tracker.complete:
        # t_fill may be inf (completed by a never-arriving block on a
        # failed disk) — completion, not time, decides the slice.
        return t_fill, consumed, [int(b) for b in ids[:consumed]]
    return float("inf"), int(times.size), [int(b) for b in ids]


def finalize_read(
    streams: list[DiskStream],
    cluster,
    t_done: float,
    block_bytes: int,
    file_name: str = "",
) -> tuple[int, int, int]:
    """Cancel outstanding work at ``t_done``; account transferred bytes.

    Returns (network bytes, disk blocks read, filesystem-cache hits).
    The cancel message reaches each disk one one-way latency after
    ``t_done``; blocks completed or in flight by then were transferred.
    """
    network_bytes = 0
    disk_blocks = 0
    cache_hits = 0
    tracer = cluster.tracer
    for s in streams:
        t_cancel = t_done + s.one_way_s
        served = served_before(s.completions, t_cancel)
        n_cached = int(np.count_nonzero(s.cached))
        cache_hits += n_cached
        disk_blocks += served
        sent = served + n_cached
        nbytes = sent * block_bytes
        network_bytes += nbytes
        if tracer.enabled:
            cancelled = int(s.block_ids.size) - sent
            tracer.account_bytes("network", nbytes)
            tracer.instant(
                "scheme.cancel",
                "scheme",
                t_cancel,
                track="scheme",
                args={"disk": s.disk_id, "sent": sent, "cancelled": cancelled},
            )
            if cancelled > 0:
                tracer.count("scheme.blocks_cancelled_in_queue", cancelled)
        filer = cluster.filer_of_disk(s.disk_id)
        filer.link.account(nbytes)
        # Blocks that came off the platters populate the filesystem cache.
        uncached_ids = s.block_ids[~s.cached][:served]
        filer.record_read(file_name, uncached_ids, block_bytes)
        cached_ids = s.block_ids[s.cached]
        filer.record_read(file_name, cached_ids, block_bytes)
    return network_bytes, disk_blocks, cache_hits


def read_epilogue(
    scheme,
    spec,
    record,
    plan,
    trial: int,
    streams: list[DiskStream],
    tracker,
    t_fill: float,
    consumed: int,
    order: list[int],
    rounds: int,
    t_open: float,
) -> AccessResult:
    """Settle a read whose arrival timeline is known — engine-shared.

    The one place completion conversion, cancel accounting, scheme-level
    tracing, completion extras/trace, arrival-order capture and the fault
    reaction's repair annotation are wired: the speculative closed-form
    dispatcher calls it with vectorised streams, the event-driven engine
    with streams reconstructed from its processes.  Policy objects arrive
    duck-typed so this module never imports :mod:`repro.core`.
    """
    cfg = scheme.config
    completion = spec.completion
    t_done, t_cancel = completion.finish(scheme, tracker, t_fill)
    net, disk_blocks, hits = finalize_read(
        streams, scheme.cluster, t_cancel, cfg.block_bytes, record.name
    )
    if spec.traced:
        trace_read_access(
            scheme.tracer, scheme.name, trial, streams, t_open, t_done, consumed,
            cfg.block_bytes, cfg.data_bytes,
        )
    completion.trace(scheme.tracer, tracker, t_fill, t_done, consumed)
    extra = dict(plan.extra)
    extra.update(completion.extras(scheme, tracker, t_fill, t_done))
    if completion.wants_order:
        # The block ids the client consumed, in arrival order — the
        # data-path API replays real payload decoding with it.
        extra["arrival_order"] = order
    spec.reaction.annotate(scheme, record, extra, t_done, t_open)
    return AccessResult(
        latency_s=t_done,
        data_bytes=cfg.data_bytes,
        network_bytes=net,
        disk_blocks=disk_blocks,
        blocks_received=consumed,
        cache_hits=hits,
        rounds=rounds,
        extra=extra,
    )


def simulate_uniform_write(
    cluster,
    disk_ids,
    placement: list[list[int]],
    block_bytes: int,
    t_send: float,
    rng_for,
    file_name: str = "",
) -> tuple[float, int]:
    """Write the same stored queues to every disk; wait for all commits.

    RAID-0 / RRAID-S / RRAID-A writes are uniform: completion is gated by
    the slowest disk (§6.3.1).  Returns (completion time at client, bytes
    over the network); the completion time is ``inf`` when any written-to
    disk fail-stops before committing (the write never fully acks).
    Write-through populates the filesystem caches.
    """
    t_done = t_send
    network_bytes = 0
    tracer = cluster.tracer
    phase_rng_for = getattr(rng_for, "phase_rng_for", None)
    for idx, disk_id in enumerate(disk_ids):
        disk_id = int(disk_id)
        filer = cluster.filer_of_disk(disk_id)
        blocks = np.asarray(placement[idx], dtype=np.int64)
        one_way = filer.link.one_way_s
        svc = cluster.block_service(
            disk_id, rng_for(disk_id), phase_rng_for=phase_rng_for
        )
        t_arrive = request_arrival_time(cluster, disk_id, t_send, one_way)
        completions = svc.serve(blocks.size, block_bytes, t_arrive)
        if blocks.size:
            ack = response_arrival_times(
                cluster, disk_id, float(completions[-1]), one_way
            )
            t_done = max(t_done, float(ack))
        nbytes = blocks.size * block_bytes
        network_bytes += nbytes
        if tracer.enabled:
            tracer.account_bytes("network", nbytes)
            if blocks.size and np.isfinite(completions[-1]):
                tracer.span(
                    "drive.write_queue",
                    "drive",
                    t_arrive,
                    float(completions[-1]),
                    track="drive",
                    args={"disk": disk_id, "blocks": int(blocks.size)},
                )
        filer.link.account(nbytes)
        filer.record_write(file_name, blocks, block_bytes)
    return t_done, network_bytes


def acks_incomplete(ack_times) -> bool:
    """True when some commit ack never arrives (a disk fail-stopped)."""
    return not np.all(np.isfinite(ack_times))


def failed_write_result(scheme, extra: dict) -> AccessResult:
    """The one shape of a failed write: infinite latency, nothing durable."""
    if scheme.tracer.enabled:
        scheme.tracer.count("scheme.failed_writes")
    return AccessResult(
        latency_s=float("inf"),
        data_bytes=scheme.config.data_bytes,
        network_bytes=0,
        disk_blocks=0,
        blocks_received=0,
        extra=extra,
    )
