"""Scheme-level read tracing — the access-core's single trace wiring site.

Both dispatch engines (speculative and adaptive) and the event-driven
wrapper describe a finished read with the same event sequence:
read counter, byte ledger (consumed/data, plus network for engines that
account it inline), the open span, and either the whole-access read span
or the failed-read instant.  :func:`trace_read_summary` emits that
sequence once, in the exact order the goldens pinned; the thin wrappers
only choose which optional pieces apply.
"""

from __future__ import annotations

import numpy as np

#: Cap on sampled points per counter series — traces stay compact while the
#: report's queue-depth / in-flight histograms keep their shape.
_COUNTER_SAMPLES = 8


def _sample_indices(n: int, cap: int = _COUNTER_SAMPLES) -> np.ndarray:
    """Up to ``cap`` evenly spaced indices into a length-``n`` series."""
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    if n <= cap:
        return np.arange(n, dtype=np.int64)
    return np.unique(np.linspace(0, n - 1, cap).astype(np.int64))


def trace_read_summary(
    tracer,
    scheme_name: str,
    trial: int,
    t_open: float,
    t_done: float,
    consumed: int,
    block_bytes: int,
    data_bytes: int,
    *,
    network_bytes: int | None = None,
    span_args: dict | None = None,
    failed_instant: bool = True,
) -> None:
    """The shared scheme-level read summary (counter, ledger, spans).

    ``network_bytes`` is emitted right after the read counter when given
    (the adaptive engine accounts network inline; the speculative engine
    accounts it in :func:`repro.accesscore.timeline.finalize_read`).
    ``span_args`` extends the read span's args (e.g. the adaptive round
    count); ``failed_instant`` controls whether an unfinished read also
    emits the ``:failed`` instant before the failure counter.
    """
    if not tracer.enabled:
        return
    tracer.count("scheme.reads")
    if network_bytes is not None:
        tracer.account_bytes("network", network_bytes)
    tracer.account_bytes("consumed", consumed * block_bytes)
    tracer.account_bytes("data", data_bytes)
    tracer.span("scheme.open", "scheme", 0.0, t_open, track="scheme")
    name = f"scheme.read:{scheme_name}"
    if np.isfinite(t_done):
        args = {"trial": trial, "blocks_consumed": consumed}
        if span_args:
            args.update(span_args)
        tracer.span(name, "scheme", 0.0, t_done, track="scheme", args=args)
    else:
        if failed_instant:
            tracer.instant(
                f"{name}:failed", "scheme", t_open, track="scheme",
                args={"trial": trial},
            )
        tracer.count("scheme.failed_reads")


def trace_read_access(
    tracer,
    scheme_name: str,
    trial: int,
    streams: list,
    t_open: float,
    t_done: float,
    consumed: int,
    block_bytes: int,
    data_bytes: int,
) -> None:
    """Record the scheme-level view of one read access.

    Emits the open + whole-access spans, samples the client's in-flight
    block count over the access, and feeds the byte ledger the two numbers
    the :class:`repro.obs.TraceReport` reconciliation rests on: ``consumed``
    (bytes the client used) and ``data`` (bytes it asked for).  The
    ``network`` side of the ledger is accounted in
    :func:`repro.accesscore.timeline.finalize_read`.
    """
    if not tracer.enabled:
        return
    trace_read_summary(
        tracer, scheme_name, trial, t_open, t_done, consumed,
        block_bytes, data_bytes,
    )
    total = sum(int(s.block_ids.size) for s in streams)
    if total:
        times = np.sort(np.concatenate([s.arrivals for s in streams]))
        times = times[np.isfinite(times)]
        for i in _sample_indices(times.size):
            tracer.counter(
                "client.inflight", float(times[i]), total - (i + 1), track="client"
            )
