"""Access configuration and result types shared by every engine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accesscore.routing import MB


@dataclass(frozen=True)
class AccessConfig:
    """Parameters of one storage access (the §6.2.5 baseline by default).

    Attributes
    ----------
    data_bytes:
        Original data size (1 GB baseline).
    block_bytes:
        Coding/striping block size (1 MB baseline).
    n_disks:
        Disks used by the access (64 baseline).
    redundancy:
        Degree of data redundancy D = N/K - 1 (3.0 baseline; RAID-0 always
        runs at 0).
    lt_c, lt_delta:
        LT code parameters (C = 1.0, delta = 0.5 per §6.2.5).
    """

    data_bytes: int = 1024 * MB
    block_bytes: int = 1 * MB
    n_disks: int = 64
    redundancy: float = 3.0
    lt_c: float = 1.0
    lt_delta: float = 0.5
    #: Client NIC rate; ``inf`` is the paper's plentiful-lambda assumption.
    #: Finite values model the Collins & Plank slow-shared-WAN regime
    #: (§2.3): arrivals serialise through the client's access link.
    client_bandwidth_bps: float = float("inf")

    @property
    def k(self) -> int:
        """Number of original blocks."""
        return max(1, self.data_bytes // self.block_bytes)

    @property
    def n_coded(self) -> int:
        """Coded blocks at the configured redundancy."""
        return max(self.k, int(round((1.0 + self.redundancy) * self.k)))

    @property
    def replicas(self) -> int:
        """Copies per block for the replication schemes (D + 1)."""
        return int(round(self.redundancy)) + 1


def _jsonable(value):
    """Canonical JSON form: numpy scalars/arrays -> python, dict keys -> str.

    The mapping is idempotent (``_jsonable(_jsonable(x)) == _jsonable(x)``),
    which is what makes :meth:`AccessResult.to_jsonable` a fixed point under
    JSON round-trips: floats survive exactly (including ``inf``/``nan``),
    and every container lands in the one shape ``json.loads`` produces.
    """
    if type(value) in (int, float, str, bool, type(None)):
        # Exact-type fast path: the overwhelming share of values are
        # already-plain scalars (numpy subclasses fall through to the
        # isinstance chain below).
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    return value


#: AccessResult fields serialised by :meth:`AccessResult.to_jsonable`, in
#: canonical order.  Kept explicit (rather than introspected) so a new
#: field is a conscious codec decision — cache entries and cross-process
#: payloads depend on this shape.
_RESULT_FIELDS = (
    "latency_s",
    "data_bytes",
    "network_bytes",
    "disk_blocks",
    "blocks_received",
    "cache_hits",
    "rounds",
    "extra",
)


@dataclass
class AccessResult:
    """Metrics of one access (§6.2.3)."""

    latency_s: float
    data_bytes: int
    network_bytes: int
    disk_blocks: int
    blocks_received: int
    cache_hits: int = 0
    rounds: int = 1
    extra: dict = field(default_factory=dict)

    @property
    def bandwidth_bps(self) -> float:
        """Delivered bandwidth: original data size / access latency."""
        return self.data_bytes / self.latency_s if self.latency_s > 0 else 0.0

    @property
    def bandwidth_mbps(self) -> float:
        return self.bandwidth_bps / MB

    @property
    def io_overhead(self) -> float:
        """(bytes sent over networks - data size) / data size (§6.2.3)."""
        return (self.network_bytes - self.data_bytes) / self.data_bytes

    def to_jsonable(self) -> dict:
        """Lossless JSON form of this result.

        Numeric fields survive a JSON round-trip exactly (Python prints
        shortest-round-trip floats; ``inf`` travels as ``Infinity``);
        ``extra`` is canonicalised (numpy scalars to python scalars, dict
        keys to strings), so re-encoding a decoded result is byte-stable —
        the bit-identity contract :mod:`repro.exec` checks across process
        boundaries rests on this.
        """
        return {name: _jsonable(getattr(self, name)) for name in _RESULT_FIELDS}

    @classmethod
    def from_jsonable(cls, data: dict) -> "AccessResult":
        """Rebuild a result from :meth:`to_jsonable` output."""
        unknown = set(data) - set(_RESULT_FIELDS)
        if unknown:
            raise ValueError(f"unknown AccessResult fields: {sorted(unknown)}")
        return cls(**{name: data[name] for name in _RESULT_FIELDS if name in data})
