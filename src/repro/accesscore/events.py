"""Event-driven wrapper of the access core: the §6.2.2 simulator, literally.

Every entity — client, filer link, drive, background generator, fault
pump — is a discrete-event process on the :mod:`repro.sim` kernel,
exactly as Figure 6-3 draws the simulator.  The *semantics* are not
re-implemented here: reads are planned by the composition's reaction
policy, consumed through the completion policy's tracker, retried through
``reaction.retry_targets``, and settled through the same
:func:`repro.accesscore.timeline.read_epilogue` the closed-form engine
uses; writes build their supply and stop rule from the write policy.
What this module adds is *time*: requests queue at
:class:`repro.disk.drive.DiskDrive` entities, contend with background
streams and other clients, and get flipped mid-service by the fault pump
(:func:`attach_faults` — the single DES fault wiring site).

Layering rule: this module never imports :mod:`repro.core`.  Policy
objects arrive duck-typed on the scheme (``scheme.spec``), so the core
stays importable from either direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accesscore.result import AccessResult
from repro.accesscore.routing import request_arrival_time, response_arrival_times
from repro.accesscore.timeline import (
    DiskStream,
    failed_write_result,
    read_epilogue,
)
from repro.accesscore.tracing import trace_read_summary
from repro.disk.drive import DiskDrive, DiskRequest
from repro.disk.geometry import SECTOR_BYTES
from repro.disk.mechanics import DiskMechanics
from repro.disk.workload import BackgroundWorkload
from repro.sim import Environment, Store
from repro.sim.rng import stable_seed

#: Hand-off budget multiplier for the adaptive event loop — the same
#: safety valve as the closed form's (50 hand-offs per disk).
_HANDOFF_BUDGET_PER_DISK = 50


@dataclass
class EventAccess:
    """Outcome of one event-driven access (first client's view)."""

    latency_s: float
    blocks_received: int
    network_bytes: int
    per_client: dict = field(default_factory=dict)
    #: The first client's full metrics, settled through the shared
    #: access-core epilogue — same shape as a closed-form read.
    result: AccessResult | None = None


class EventDrive:
    """A drive entity whose per-block service times follow the same
    distribution as :class:`repro.disk.service.BlockService`.

    The drive serves whole data blocks: each is one queue entry whose
    service time is sampled from the disk's (blocking factor, p_seq, zone)
    state — identical inputs to the closed-form engine, so the two engines
    are statistically comparable.  Requests from different clients and the
    background stream share the queue under the ``fair`` discipline.
    Statically failed disks (the environment's fail-stop draw) start in
    the failed state, so submissions resolve to ``inf`` like the closed
    form's warped completions.
    """

    def __init__(
        self,
        env: Environment,
        cluster,
        disk_id: int,
        rng: np.random.Generator,
        block_bytes: int,
    ) -> None:
        self.env = env
        self.disk_id = disk_id
        self.block_bytes = block_bytes
        self.svc = cluster.block_service(disk_id, rng)
        # The block-service sampler substitutes for the drive's
        # sector-level timing so both engines draw from one distribution.
        self.drive = DiskDrive(
            env,
            DiskMechanics(),
            np.random.default_rng(0),
            scheduler="fair",
            service_time_fn=self._service_time,
        )
        state = cluster.disk_state(disk_id)
        if state.failed:
            self.drive.failed = True
        if state.background is not None:
            self.drive.attach_background(
                BackgroundWorkload(
                    state.background.interval_s,
                    np.random.default_rng(stable_seed(disk_id, "bg")),
                )
            )

    def _service_time(self, req: DiskRequest) -> float:
        if req.is_background:
            bg = self.svc.background
            if bg is not None:
                return float(
                    bg.sample_services(
                        1, self.svc.mechanics, self.svc.spt, self.svc.rng
                    )[0]
                )
            return 0.005
        return float(self.svc.block_service_times(1, self.block_bytes)[0])

    def submit_block(self, tag) -> DiskRequest:
        sectors = max(1, self.block_bytes // SECTOR_BYTES)
        return self.drive.submit(DiskRequest(lba=0, sectors=sectors, tag=tag))

    def cancel_client(self, client_id) -> int:
        """Cancel every queued foreground request of one client."""
        return self.drive.cancel(
            lambda r: not r.is_background and r.tag[0] == client_id
        )

    def cancel_blocks(self, client_id, block_ids) -> int:
        """Cancel a client's queued requests for specific blocks."""
        ids = {int(b) for b in block_ids}
        return self.drive.cancel(
            lambda r: not r.is_background
            and r.tag[0] == client_id
            and int(r.tag[1]) in ids
        )


def attach_faults(env: Environment, cluster, drives: dict[int, EventDrive]):
    """Register the cluster's fault plan on a DES run — the single site.

    Maps every event drive to the injector's pump, so fail-stops flush
    and abort real queues, recoveries restart them, and slowdowns stretch
    in-progress service — the same plan the closed form reads as warped
    timelines.  No-op (and no process) without an installed plan.
    """
    injector = cluster.faults
    if injector is None or not injector.has_faults:
        return None
    return injector.schedule_on(
        env, {d: ed.drive for d, ed in drives.items()}
    )


def build_drives(
    env: Environment, scheme, disk_ids, trial: int
) -> dict[int, EventDrive]:
    """One :class:`EventDrive` per disk, on the scheme's ``refsvc`` streams."""
    rng_for = scheme.reference_rng_factory(trial)
    return {
        int(d): EventDrive(
            env, scheme.cluster, int(d), rng_for(int(d)), scheme.config.block_bytes
        )
        for d in disk_ids
    }


class _StreamState:
    """Per-(client, disk, round) recording of what the DES actually did.

    Accumulates disk-side completion times and client-side arrival times
    as the waiter processes observe them; :meth:`to_disk_stream` then
    yields the same :class:`~repro.accesscore.timeline.DiskStream` shape
    the closed form computes, so the shared epilogue (cancel accounting,
    tracing, repair annotation) applies verbatim.
    """

    __slots__ = ("disk_id", "block_ids", "cached", "one_way", "completions", "arrivals")

    def __init__(self, disk_id: int, block_ids, cached, one_way: float) -> None:
        self.disk_id = int(disk_id)
        self.block_ids = np.asarray(block_ids, dtype=np.int64)
        self.cached = np.asarray(cached, dtype=bool)
        self.one_way = float(one_way)
        #: uncached position -> finite disk completion time.
        self.completions: dict[int, float] = {}
        self.arrivals = np.full(self.block_ids.size, np.inf)

    def to_disk_stream(self) -> DiskStream:
        n_uncached = int(np.count_nonzero(~self.cached))
        comp = np.full(n_uncached, np.inf)
        for pos, t in self.completions.items():
            comp[pos] = t
        # served_before needs time order; only the multiset matters, so
        # sorting the recorded times is exact.
        comp.sort()
        return DiskStream(
            self.disk_id, self.block_ids, self.cached, comp, self.arrivals,
            self.one_way,
        )


class _Final:
    """What a finished client hands the post-run settle step."""

    __slots__ = (
        "tracker", "states", "t_fill", "t_done", "consumed", "order", "rounds",
        "cache_hits", "fetched", "handoffs",
    )

    def __init__(self) -> None:
        self.tracker = None
        self.states: list[_StreamState] = []
        self.t_fill = float("inf")
        self.t_done = float("inf")
        self.consumed = 0
        self.order: list[int] = []
        self.rounds = 1
        self.cache_hits = 0
        self.fetched: list[int] = []
        self.handoffs = 0


def _consume_one(tracker, observe, t: float, bid: int) -> None:
    """Feed one arrival to the tracker — same hook order as the core loop."""
    if observe is not None:
        observe(float(t), int(bid))
    else:
        tracker.add(int(bid))


def event_read(scheme, file_name: str, trial: int = 0, n_clients: int = 1) -> EventAccess:
    """Run one read fully event-driven, through the composition's policies.

    With ``n_clients > 1`` each client issues the same access shape over
    the *same* drives (distinct trackers); contention emerges naturally
    from the shared per-drive queues.  Returns the first client's metrics
    (settled through the shared access-core epilogue) plus every client's
    latency.
    """
    spec = scheme.spec
    cfg = scheme.config
    cluster = scheme.cluster
    record = scheme._record(file_name)
    plan = spec.reaction.plan_read(scheme, record)
    if isinstance(plan, AccessResult):
        # Fate sealed before any disk was touched (e.g. RAID-5's double
        # failure) — identical short-circuit to the closed-form pipeline.
        return EventAccess(
            latency_s=plan.latency_s,
            blocks_received=plan.blocks_received,
            network_bytes=plan.network_bytes,
            per_client={cid: plan.latency_s for cid in range(n_clients)},
            result=plan,
        )

    env = Environment()
    disk_ids = [int(d) for d in plan.disk_ids]
    drives = build_drives(env, scheme, disk_ids, trial)
    attach_faults(env, cluster, drives)
    one_way = {d: cluster.filer_of_disk(d).link.one_way_s for d in disk_ids}
    t0 = scheme.open_latency()
    adaptive = bool(getattr(spec.dispatch, "adaptive", False))
    finals: dict[int, _Final] = {}

    # -- shared fetch machinery -------------------------------------------

    def deliver(cid, inbox, state, pos, bid, arr):
        """A filesystem-cache hit travelling back to the client."""
        if np.isfinite(arr):
            yield env.timeout(float(arr) - env.now)
            state.arrivals[pos] = env.now
            inbox.put((env.now, bid, state, pos))
        else:
            inbox.put((float("inf"), bid, state, pos))

    def wait_block(cid, inbox, state, pos, upos, bid, req):
        """Wait for one queued block: serve, record, respond, arrive."""
        finished = yield req.done
        if finished is None or not np.isfinite(finished):
            # Cancelled in queue, flushed or aborted by a fail-stop:
            # the block never crosses the network.
            inbox.put((float("inf"), bid, state, pos))
            return
        state.completions[upos] = float(finished)
        arr = response_arrival_times(cluster, state.disk_id, finished, state.one_way)
        if not np.isfinite(arr):
            inbox.put((float("inf"), bid, state, pos))
            return
        yield env.timeout(float(arr) - env.now)
        state.arrivals[pos] = env.now
        inbox.put((env.now, bid, state, pos))

    def feed_disk(cid, inbox, state):
        """One disk's stream: request hop, cache split, queue the rest."""
        d = state.disk_id
        t_arrive = request_arrival_time(cluster, d, env.now, state.one_way)
        if not np.isfinite(t_arrive):
            for pos, bid in enumerate(state.block_ids.tolist()):
                inbox.put((float("inf"), bid, state, pos))
            return
        yield env.timeout(t_arrive - env.now)
        drive = drives[d]
        upos = 0
        for pos, bid in enumerate(state.block_ids.tolist()):
            if state.cached[pos]:
                arr = response_arrival_times(cluster, d, env.now, state.one_way)
                env.process(
                    deliver(cid, inbox, state, pos, bid, float(arr)),
                    name=f"hit-c{cid}",
                )
            else:
                req = drive.submit_block(tag=(cid, bid))
                env.process(
                    wait_block(cid, inbox, state, pos, upos, bid, req),
                    name=f"block-c{cid}",
                )
                upos += 1

    def launch_streams(cid, inbox, states, round_disks, round_placement):
        """Spawn the per-disk stream processes; return the block count."""
        total = 0
        for idx, d in enumerate(round_disks):
            blocks = [int(b) for b in round_placement[idx]]
            filer = cluster.filer_of_disk(int(d))
            cached = filer.cached_blocks(
                file_name, np.asarray(blocks, dtype=np.int64)
            )
            state = _StreamState(int(d), blocks, cached, one_way[int(d)])
            states.append(state)
            env.process(feed_disk(cid, inbox, state), name=f"stream-c{cid}-d{d}")
            total += len(blocks)
        return total

    # -- speculative client ------------------------------------------------

    def spec_client(cid):
        fin = _Final()
        finals[cid] = fin
        tracker = spec.completion.tracker(scheme, record, plan)
        observe = getattr(tracker, "observe", None)
        fin.tracker = tracker
        inbox = Store(env)
        yield env.timeout(t0)
        total = launch_streams(cid, inbox, fin.states, disk_ids, plan.placement)
        outcomes = 0
        deferred = []  # blocks whose arrival never materialised
        last_finite = t0

        def consume():
            """Drain arrivals into the tracker until it completes."""
            nonlocal outcomes, last_finite
            while outcomes < total and not tracker.complete:
                t, bid, state, pos = yield inbox.get()
                outcomes += 1
                if np.isfinite(t):
                    last_finite = t
                    fin.consumed += 1
                    _consume_one(tracker, observe, t, bid)
                    fin.order.append(int(bid))
                    if tracker.complete:
                        fin.t_fill = float(t)
                else:
                    deferred.append((int(bid), state, pos))

        yield env.process(consume(), name=f"consume-c{cid}")

        injector = cluster.faults
        if (
            not tracker.complete
            and injector is not None
            and getattr(spec.reaction, "respeculates", False)
        ):
            # Mid-read faults stalled the access: the reaction decides
            # which disks can serve a second round, and when.
            pending: dict[int, list[int]] = {}
            for bid, state, _pos in deferred:
                if not injector.permanently_failed(state.disk_id):
                    pending.setdefault(state.disk_id, []).append(bid)
            resolved = spec.reaction.retry_targets(scheme, pending, last_finite, t0)
            if resolved is not None:
                retry_disks, t_retry = resolved
                fin.rounds = 2
                if scheme.tracer.enabled:
                    scheme.tracer.count("scheme.respeculations")
                if t_retry > env.now:
                    yield env.timeout(t_retry - env.now)
                total += launch_streams(
                    cid, inbox, fin.states, retry_disks,
                    [pending[d] for d in retry_disks],
                )
                yield env.process(consume(), name=f"consume2-c{cid}")

        if not tracker.complete:
            # The closed form consumes never-arriving blocks too (their
            # arrival time is inf): a tracker may complete on them, which
            # keeps block accounting honest while the latency stays inf.
            for bid, _state, _pos in deferred:
                fin.consumed += 1
                _consume_one(tracker, observe, float("inf"), bid)
                fin.order.append(int(bid))
                if tracker.complete:
                    break

        t_done, t_cancel = spec.completion.finish(scheme, tracker, fin.t_fill)
        fin.t_done = t_done

        def cancel_one(d, at):
            delay = at + one_way[d] - env.now
            if delay > 0:
                yield env.timeout(delay)
            drives[d].cancel_client(cid)

        if np.isfinite(t_cancel):
            for d in dict.fromkeys(s.disk_id for s in fin.states):
                env.process(cancel_one(d, t_cancel), name=f"cancel-c{cid}-d{d}")

        # Drain every remaining outcome (served, in flight, cancelled or
        # flushed) so the stream records are complete for the epilogue.
        while outcomes < total:
            yield inbox.get()
            outcomes += 1

    # -- adaptive client ---------------------------------------------------

    def adaptive_client(cid):
        fin = _Final()
        finals[cid] = fin
        tracker = spec.completion.tracker(scheme, record, plan)
        observe = getattr(tracker, "observe", None)
        fin.tracker = tracker
        inbox = Store(env)
        yield env.timeout(t0)
        primaries, holder_map = spec.placement.adaptive_units(cfg, record)
        primaries = [[int(b) for b in ids] for ids in primaries]
        n = len(disk_ids)
        fin.fetched = [0] * n
        budget = _HANDOFF_BUDGET_PER_DISK * n
        # unit -> True per disk, insertion-ordered: the steal scan must be
        # deterministic, so sets are out.
        outstanding: list[dict[int, bool]] = [dict() for _ in range(n)]
        reassigned: dict[int, int] = {}
        #: Units whose data already reached the client — no longer worth
        #: stealing even while a stale copy sits in some queue.
        resolved: set[int] = set()
        #: Units already fetched speculatively a second time; one
        #: duplicate per unit keeps the race bounded.
        duplicated: set[int] = set()
        total = sum(len(p) for p in primaries)
        tracer = scheme.tracer
        # Per-disk observed pace, the client's basis for single-block
        # steal decisions (§5.3.1): request arrival, last foreground
        # completion, foreground blocks served.
        t_arrived = [float("inf")] * n
        last_comp = [0.0] * n
        n_served = [0] * n

        def observed_avg(idx):
            """Wall time per block the client has seen from one disk."""
            if not n_served[idx] or not np.isfinite(t_arrived[idx]):
                return float("inf")
            return (last_comp[idx] - t_arrived[idx]) / n_served[idx]

        def steal_decision(thief_idx):
            """The client reacts to a drained disk: find a victim, steal."""
            nonlocal total
            yield env.timeout(one_way[disk_ids[thief_idx]])
            if fin.handoffs >= budget or tracker.complete:
                return
            best, best_cnt = None, 0
            for b_idx in range(n):
                if b_idx == thief_idx:
                    continue
                cnt = sum(
                    1
                    for u in outstanding[b_idx]
                    if u not in resolved and thief_idx in holder_map.get(u, ())
                )
                if cnt > best_cnt:
                    best, best_cnt = b_idx, cnt
            if best is None:
                return
            elig = [
                u
                for u in outstanding[best]
                if u not in resolved and thief_idx in holder_map.get(u, ())
            ]
            if not elig:
                return
            if len(elig) == 1:
                # Hand-off of a victim's last block: only worthwhile when
                # the thief is clearly faster by the client's observed
                # per-disk pace — otherwise two idle disks would bounce
                # the block forever (same rule as the closed form).
                thief_time = observed_avg(thief_idx) + 3 * one_way[
                    disk_ids[thief_idx]
                ]
                if not thief_time < 0.5 * observed_avg(best):
                    return
            steal = elig[len(elig) // 2 :]  # the second half
            fin.handoffs += 1
            if tracer.enabled:
                tracer.count("scheme.handoffs")
                tracer.instant(
                    "scheme.round",
                    "scheme",
                    env.now,
                    track="scheme",
                    args={
                        "round": fin.handoffs + 1,
                        "thief": disk_ids[thief_idx],
                        "victim": disk_ids[best],
                        "eligible": best_cnt,
                    },
                )
            victim_d = disk_ids[best]
            # The cancel message crosses to the victim's filer first.
            yield env.timeout(one_way[victim_d])
            for u in steal:
                reassigned[u] = thief_idx
            removed = drives[victim_d].cancel_blocks(cid, steal)
            if removed == 0 and len(steal) == 1:
                # The block is already in service: the drive model serves
                # whole blocks, so instead of the closed form's fractional
                # mid-transfer hand-off the thief fetches a speculative
                # duplicate and the first arrival wins (once per unit).
                u = steal[0]
                reassigned.pop(u, None)
                if u not in duplicated:
                    duplicated.add(u)
                    total += 1
                    env.process(unit_fetch(u, thief_idx), name=f"dup-c{cid}")

        def unit_fetch(unit, idx):
            """One unit's life: queue at its disk, follow hand-offs, arrive.

            A unit flushed or aborted by a fault fails over to the next
            holder of a replica (each holder tried at most once) — the
            event-engine analogue of stealing from a failed victim.
            """
            visited = {idx}
            while True:
                d = disk_ids[idx]
                outstanding[idx][unit] = True
                req = drives[d].submit_block(tag=(cid, unit))
                finished = yield req.done
                outstanding[idx].pop(unit, None)
                if finished is None:
                    # Stolen while queued: re-request from the thief.
                    idx = reassigned.pop(unit, idx)
                    visited.add(idx)
                    continue
                if not np.isfinite(finished):
                    holders = sorted(holder_map.get(unit, ()))
                    nxt = next((h for h in holders if h not in visited), None)
                    if nxt is not None:
                        idx = nxt
                        visited.add(idx)
                        continue
                    inbox.put((float("inf"), unit, idx, None))
                    return
                fin.fetched[idx] += 1
                last_comp[idx] = float(finished)
                n_served[idx] += 1
                if not outstanding[idx]:
                    # The disk drained at this completion; the client
                    # notices one one-way later (inside steal_decision).
                    env.process(steal_decision(idx), name=f"steal-c{cid}")
                arr = response_arrival_times(cluster, d, finished, one_way[d])
                if not np.isfinite(arr):
                    inbox.put((float("inf"), unit, idx, None))
                    return
                yield env.timeout(float(arr) - env.now)
                resolved.add(unit)
                inbox.put((env.now, unit, idx, None))
                return

        def disk_round1(idx):
            d = disk_ids[idx]
            t_arrive = request_arrival_time(cluster, d, env.now, one_way[d])
            if not np.isfinite(t_arrive):
                for b in primaries[idx]:
                    inbox.put((float("inf"), b, idx, None))
                return
            yield env.timeout(t_arrive - env.now)
            t_arrived[idx] = env.now
            ids = primaries[idx]
            filer = cluster.filer_of_disk(d)
            cached = filer.cached_blocks(
                file_name, np.asarray(ids, dtype=np.int64)
            )
            hit_ids = [b for b, c in zip(ids, cached) if c]
            for b in hit_ids:
                arr = response_arrival_times(cluster, d, env.now, one_way[d])
                env.process(
                    deliver(cid, inbox, _hit_state(d, b), 0, b, float(arr)),
                    name=f"hit-c{cid}",
                )
            filer.record_read(file_name, hit_ids, cfg.block_bytes)
            fin.cache_hits += len(hit_ids)
            queued = [b for b, c in zip(ids, cached) if not c]
            for b in queued:
                env.process(unit_fetch(int(b), idx), name=f"unit-c{cid}")
            if not queued:
                # Nothing to serve: the disk is idle from the request's
                # arrival and immediately looks for work to steal (this is
                # what lets mirror+adaptive's idle half participate).
                env.process(steal_decision(idx), name=f"steal-c{cid}")

        def _hit_state(d, b):
            # Cache hits need no completion/arrival record keeping for the
            # adaptive settle; a tiny throwaway state satisfies deliver().
            return _StreamState(d, [b], [True], one_way[d])

        for idx in range(n):
            env.process(disk_round1(idx), name=f"round1-c{cid}-d{disk_ids[idx]}")

        outcomes = 0
        deferred: list[int] = []
        while outcomes < total and not tracker.complete:
            t, unit, _idx, _ = yield inbox.get()
            outcomes += 1
            if np.isfinite(t):
                fin.consumed += 1
                _consume_one(tracker, observe, t, unit)
                fin.order.append(int(unit))
                if tracker.complete:
                    fin.t_fill = float(t)
            else:
                deferred.append(int(unit))
        if not tracker.complete:
            for unit in deferred:
                fin.consumed += 1
                _consume_one(tracker, observe, float("inf"), unit)
                fin.order.append(int(unit))
                if tracker.complete:
                    break
        fin.t_done, _ = spec.completion.finish(scheme, tracker, fin.t_fill)
        # No cancel: the adaptive engine lets outstanding queues drain
        # (same as the closed form's event loop running dry).
        while outcomes < total:
            yield inbox.get()
            outcomes += 1

    # -- run ---------------------------------------------------------------

    make = adaptive_client if adaptive else spec_client
    clients = [
        env.process(make(cid), name=f"client-{cid}") for cid in range(n_clients)
    ]
    # Background generators run forever; stop once every client finished.
    env.run(until=env.all_of(clients))

    fin = finals[0]
    if adaptive:
        net_bytes = (sum(fin.fetched) + fin.cache_hits) * cfg.block_bytes
        for idx, d in enumerate(disk_ids):
            cluster.filer_of_disk(d).link.account(
                fin.fetched[idx] * cfg.block_bytes
            )
        trace_read_summary(
            scheme.tracer, scheme.name, trial, t0, fin.t_done, fin.consumed,
            cfg.block_bytes, cfg.data_bytes,
            network_bytes=net_bytes,
            span_args={"rounds": fin.handoffs + 1},
            failed_instant=False,
        )
        spec.completion.trace(
            scheme.tracer, fin.tracker, fin.t_fill, fin.t_done, fin.consumed
        )
        extra = dict(plan.extra)
        extra.update(
            spec.completion.extras(scheme, fin.tracker, fin.t_fill, fin.t_done)
        )
        extra["handoffs"] = fin.handoffs
        if spec.completion.wants_order:
            extra["arrival_order"] = fin.order[: fin.consumed]
        spec.reaction.annotate(scheme, record, extra, fin.t_done, t0)
        result = AccessResult(
            latency_s=fin.t_done,
            data_bytes=cfg.data_bytes,
            network_bytes=net_bytes,
            disk_blocks=sum(fin.fetched),
            blocks_received=fin.consumed,
            cache_hits=fin.cache_hits,
            rounds=fin.handoffs + 1,
            extra=extra,
        )
    else:
        streams = [s.to_disk_stream() for s in fin.states]
        result = read_epilogue(
            scheme, spec, record, plan, trial,
            streams, fin.tracker, fin.t_fill, fin.consumed, fin.order,
            fin.rounds, t0,
        )
    return EventAccess(
        latency_s=result.latency_s,
        blocks_received=result.blocks_received,
        network_bytes=result.network_bytes,
        per_client={cid: finals[cid].t_done for cid in range(n_clients)},
        result=result,
    )


def event_write(scheme, file_name: str, trial: int = 0) -> AccessResult:
    """Run one write fully event-driven, through the composition's policies.

    Uniform-family writes (the write policy exposes ``encode_tail_s``)
    push every stored queue and wait for the slowest commit ack; the
    speculative rateless write (the policy exposes ``supply_plan``) feeds
    merged commit acks to the shared
    :class:`~repro.accesscore.trackers.DecodableCommit` gate and settles
    through the policy's ``commit``.
    """
    write = scheme.spec.write
    if hasattr(write, "supply_plan"):
        return _event_speculative_write(scheme, write, file_name, trial)
    return _event_uniform_write(scheme, write, file_name, trial)


def _event_uniform_write(scheme, write, file_name: str, trial: int) -> AccessResult:
    spec = scheme.spec
    cfg = scheme.config
    cluster = scheme.cluster
    disks = scheme.select_disks(trial)
    pspec = spec.placement.plan(cfg, len(disks), trial)
    env = Environment()
    drives = build_drives(env, scheme, disks, trial)
    attach_faults(env, cluster, drives)
    t0 = scheme.open_latency()
    acks: list[float] = []
    net = 0

    def waiter(d, one_way, req, inbox):
        finished = yield req.done
        if finished is None or not np.isfinite(finished):
            inbox.put(float("inf"))
            return
        ack = response_arrival_times(cluster, d, finished, one_way)
        inbox.put(float(ack))

    def disk_write(d, blocks, inbox):
        filer = cluster.filer_of_disk(int(d))
        one_way = filer.link.one_way_s
        t_arrive = request_arrival_time(cluster, int(d), env.now, one_way)
        if not np.isfinite(t_arrive):
            for _ in blocks:
                inbox.put(float("inf"))
            return
        yield env.timeout(t_arrive - env.now)
        for b in blocks:
            req = drives[int(d)].submit_block(tag=(0, int(b)))
            env.process(waiter(int(d), one_way, req, inbox), name="write-ack")

    def client():
        nonlocal net
        yield env.timeout(t0)
        inbox = Store(env)
        total = 0
        for idx, d in enumerate(disks):
            blocks = pspec.placement[idx]
            env.process(disk_write(d, blocks, inbox), name=f"write-d{d}")
            total += len(blocks)
            nbytes = len(blocks) * cfg.block_bytes
            net += nbytes
            if scheme.tracer.enabled:
                scheme.tracer.account_bytes("network", nbytes)
            filer = cluster.filer_of_disk(int(d))
            filer.link.account(nbytes)
            filer.record_write(file_name, blocks, cfg.block_bytes)
        for _ in range(total):
            acks.append((yield inbox.get()))

    proc = env.process(client(), name="write-client")
    env.run(until=proc)
    t_done = max([t0] + acks) if acks else t0
    return write.settle(scheme, file_name, disks, pspec, t_done, net, t0)


def _event_speculative_write(scheme, write, file_name: str, trial: int) -> AccessResult:
    cfg = scheme.config
    cluster = scheme.cluster
    disks, per_disk_cap, target, graph = write.supply_plan(scheme, trial)
    h = len(disks)
    env = Environment()
    drives = build_drives(env, scheme, disks, trial)
    attach_faults(env, cluster, drives)
    t0 = scheme.open_latency()
    one_ways = [cluster.filer_of_disk(int(d)).link.one_way_s for d in disks]
    completions: list[list[float]] = [[] for _ in disks]
    outcome: dict = {"t_enough": None, "saw_inf": False}

    def waiter(idx, bid, req, inbox):
        finished = yield req.done
        if finished is None or not np.isfinite(finished):
            inbox.put((float("inf"), bid))
            return
        completions[idx].append(float(finished))
        ack = response_arrival_times(
            cluster, int(disks[idx]), finished, one_ways[idx]
        )
        if not np.isfinite(ack):
            inbox.put((float("inf"), bid))
            return
        yield env.timeout(float(ack) - env.now)
        inbox.put((env.now, bid))

    def disk_stream(idx, inbox):
        d = int(disks[idx])
        t_arrive = request_arrival_time(cluster, d, env.now, one_ways[idx])
        if not np.isfinite(t_arrive):
            for j in range(per_disk_cap):
                inbox.put((float("inf"), idx + h * j))
            return
        yield env.timeout(t_arrive - env.now)
        for j in range(per_disk_cap):
            bid = idx + h * j
            req = drives[d].submit_block(tag=(0, bid))
            env.process(waiter(idx, bid, req, inbox), name="commit-ack")

    def cancel_one(idx, at):
        delay = at + one_ways[idx] - env.now
        if delay > 0:
            yield env.timeout(delay)
        drives[int(disks[idx])].cancel_client(0)

    def client():
        yield env.timeout(t0)
        inbox = Store(env)
        for idx in range(h):
            env.process(disk_stream(idx, inbox), name=f"supply-d{disks[idx]}")
        total = h * per_disk_cap
        gate = write.commit_gate(graph, target)
        got = 0
        # Phase 1: feed finite commit acks to the decodability gate.
        while got < total and outcome["t_enough"] is None:
            t, bid = yield inbox.get()
            got += 1
            if np.isfinite(t):
                outcome["t_enough"] = gate.add(float(t), int(bid))
            else:
                outcome["saw_inf"] = True
        t_enough = outcome["t_enough"]
        if t_enough is not None:
            # Phase 2: cancel every still-queued commit, one hop out.
            for idx in range(h):
                env.process(cancel_one(idx, t_enough), name=f"wcancel-d{disks[idx]}")
        # Phase 3: drain so the committed multiset is fully recorded.
        while got < total:
            yield inbox.get()
            got += 1

    proc = env.process(client(), name="write-client")
    env.run(until=proc)

    t_enough = outcome["t_enough"]
    if t_enough is None or not np.isfinite(t_enough):
        if outcome["saw_inf"]:
            # Fault injection killed disks mid-write: the committed set
            # never reaches a decodable target.
            return failed_write_result(
                scheme, {"target_blocks": target, "write_failed": True}
            )
        raise RuntimeError(
            "speculative write exhausted its rateless supply; "
            "increase WRITE_SUPPLY_FACTOR"
        )
    comp_arrays = [np.sort(np.asarray(c, dtype=np.float64)) for c in completions]
    return write.commit(
        scheme,
        file_name,
        disks,
        one_ways,
        comp_arrays,
        per_disk_cap,
        float(t_enough),
        graph,
        target,
        trial,
    )
