"""Completion trackers: the stateful consumers behind every completion policy.

A tracker eats block arrivals in time order and reports when the access
can finish — all blocks (RAID-0), replica coverage (RRAID / RAID-0+1),
LT decode (RobuSTore), grouped Reed-Solomon fill (RobuSTore-RS) or
parity-stripe reconstruction (RAID-5).  Trackers are *per-access* mutable
state; the stateless :mod:`repro.core.policy.completion` policies build a
fresh one for every read, which is what keeps compositions trial-reentrant.
Both engines consume through the same trackers: the closed form feeds them
a sorted arrival vector, the event-driven engine feeds them one inbox
message at a time.

``observe(t, block_id)`` is the pipeline's entry point: it defaults to
:meth:`add` and exists so trackers that care about *when* progress happened
(the grouped-RS decode pipeline) can record it without the consumption loop
special-casing them.

:class:`DecodableCommit` is the writer-side twin: it consumes commit acks
in time order and reports when the speculative rateless write may cancel
(§5.2.3's decodability guarantee).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

#: Id offset distinguishing RAID-5 parity blocks from data blocks.
PARITY_BASE = 1 << 20


class CompletionTracker(Protocol):
    """Consumes block arrivals; reports when the access can finish."""

    def add(self, block_id: int) -> None: ...

    @property
    def complete(self) -> bool: ...


class TrackerBase:
    """Shared ``observe`` hook: by default the arrival time is irrelevant."""

    def add(self, block_id: int) -> None:
        raise NotImplementedError

    def observe(self, t: float, block_id: int) -> None:
        self.add(block_id)

    @property
    def complete(self) -> bool:
        raise NotImplementedError


def _consume_batch(
    tracker, originals: np.ndarray, times: np.ndarray
) -> tuple[float, int]:
    """Vectorised equivalent of feeding ``originals`` one at a time.

    ``originals`` maps each arrival to the original-block slot it covers
    (identity for :class:`AllBlocksTracker`, ``id % k`` for
    :class:`CoverageTracker`).  Finds the arrival at which the tracker's
    distinct-slot count reaches ``k``, updates ``_have``/``_count`` to
    exactly the state the scalar loop would leave (the loop stops at the
    completing arrival), and returns ``(t_fill, consumed)`` —
    ``(inf, len)`` when the batch never completes.
    """
    need = tracker.k - tracker._count
    if need <= 0:
        # Already complete before this batch.  The scalar loop still
        # consumes (and reports completion at) the first arrival — a
        # no-op for state, since every slot is already held.
        if originals.size == 0:
            return float("inf"), 0
        return float(times[0]), 1
    uniq, first = np.unique(originals, return_index=True)
    fresh = first[~tracker._have[uniq]]
    if fresh.size < need:
        tracker._have[uniq] = True
        tracker._count += int(fresh.size)
        return float("inf"), int(originals.size)
    # The need-th new slot (in arrival order) completes the access.
    stop = int(np.partition(fresh, need - 1)[need - 1])
    tracker._have[originals[: stop + 1]] = True
    tracker._count = tracker.k
    return float(times[stop]), stop + 1


class AllBlocksTracker(TrackerBase):
    """RAID-0: every distinct block must arrive."""

    def __init__(self, k: int) -> None:
        self.k = k
        self._have = np.zeros(k, dtype=bool)
        self._count = 0

    def add(self, block_id: int) -> None:
        if not self._have[block_id]:
            self._have[block_id] = True
            self._count += 1

    def consume_arrivals(self, times: np.ndarray, ids: np.ndarray) -> tuple[float, int]:
        """Batched arrival consumption; see :func:`_consume_batch`."""
        return _consume_batch(self, ids, times)

    @property
    def complete(self) -> bool:
        return self._count >= self.k


class CoverageTracker(TrackerBase):
    """RRAID: at least one replica of every original block (id = r*K + i)."""

    def __init__(self, k: int) -> None:
        self.k = k
        self._have = np.zeros(k, dtype=bool)
        self._count = 0

    def add(self, block_id: int) -> None:
        orig = block_id % self.k
        if not self._have[orig]:
            self._have[orig] = True
            self._count += 1

    def consume_arrivals(self, times: np.ndarray, ids: np.ndarray) -> tuple[float, int]:
        """Batched arrival consumption; see :func:`_consume_batch`."""
        return _consume_batch(self, ids % self.k, times)

    @property
    def complete(self) -> bool:
        return self._count >= self.k


class DecoderTracker(TrackerBase):
    """RobuSTore: the incremental LT peeling decoder."""

    def __init__(self, decoder) -> None:
        self.decoder = decoder

    def add(self, block_id: int) -> None:
        self.decoder.add(block_id)

    def consume_arrivals(self, times: np.ndarray, ids: np.ndarray) -> tuple[float, int]:
        """Batched arrival consumption: the scalar loop, fused in-tracker.

        The decoder does identical work either way; fusing skips one
        observe/complete dispatch pair per arrival and iterates native
        ints instead of numpy scalars.  Same ``(t_fill, consumed)``
        contract as :func:`_consume_batch`.
        """
        decoder = self.decoder
        add = decoder.add
        for consumed, bid in enumerate(ids.tolist(), start=1):
            add(bid)
            if decoder.is_complete:
                return float(times[consumed - 1]), consumed
        return float("inf"), int(ids.size)

    @property
    def complete(self) -> bool:
        return self.decoder.is_complete


class GroupedRSTracker(TrackerBase):
    """Complete when every RS group holds >= group_size distinct blocks.

    ``observe`` additionally records *when* each group filled
    (``fill_times``), which the grouped-RS completion policy turns into the
    pipelined per-group decode schedule.
    """

    def __init__(self, n_groups: int, group_size: int) -> None:
        self.group_size = group_size
        self._counts = np.zeros(n_groups, dtype=np.int64)
        self._filled = 0
        self._seen: set[int] = set()
        self.n_groups = n_groups
        self.fill_times: list[float] = []

    def add(self, block_id: int) -> None:
        if block_id in self._seen:
            return
        self._seen.add(block_id)
        g = block_id >> 20  # group packed in the high bits
        if self._counts[g] < self.group_size:
            self._counts[g] += 1
            if self._counts[g] == self.group_size:
                self._filled += 1

    def observe(self, t: float, block_id: int) -> None:
        before = self._filled
        self.add(block_id)
        if self._filled > before:
            self.fill_times.extend([t] * (self._filled - before))

    @property
    def complete(self) -> bool:
        return self._filled >= self.n_groups


class RegenStripeTracker(TrackerBase):
    """Regenerating layout: every stripe needs ``k`` *complete* nodes.

    Block id ``(stripe << 20) | (node * alpha + sub)``; a node counts only
    once all ``alpha`` of its coded blocks arrived (the product-matrix
    decoder consumes whole node vectors), and a stripe fills at ``k``
    complete nodes.  ``observe`` records stripe fill times for the
    pipelined per-stripe decode, mirroring :class:`GroupedRSTracker`.
    """

    def __init__(
        self, n_stripes: int, nodes: int, k: int, alpha: int, d: int | None = None
    ) -> None:
        self.n_stripes = n_stripes
        self.nodes = nodes
        self.k = k
        self.alpha = alpha
        self.d = nodes - 1 if d is None else d
        self._seen: set[int] = set()
        self._sub_counts = np.zeros((n_stripes, nodes), dtype=np.int64)
        self._nodes_done = np.zeros(n_stripes, dtype=np.int64)
        self._filled = 0
        self.fill_times: list[float] = []

    def add(self, block_id: int) -> None:
        if block_id in self._seen:
            return
        self._seen.add(block_id)
        s = block_id >> 20
        node = (block_id & 0xFFFFF) // self.alpha
        self._sub_counts[s, node] += 1
        if self._sub_counts[s, node] == self.alpha:
            if self._nodes_done[s] < self.k:
                self._nodes_done[s] += 1
                if self._nodes_done[s] == self.k:
                    self._filled += 1

    def observe(self, t: float, block_id: int) -> None:
        before = self._filled
        self.add(block_id)
        if self._filled > before:
            self.fill_times.extend([t] * (self._filled - before))

    @property
    def complete(self) -> bool:
        return self._filled >= self.n_stripes


class ParityStripeTracker(TrackerBase):
    """RAID-5: data blocks arrive directly or via stripe reconstruction."""

    def __init__(self, k: int, stripes: list, failed_pos) -> None:
        self.k = k
        self._have = np.zeros(k, dtype=bool)
        self._count = 0
        self._failed_pos = failed_pos
        # For each stripe with a lost block: remaining pieces to XOR.
        self._stripe_need: dict[int, set] = {}
        self._lost_block: dict[int, int] = {}
        if failed_pos is not None:
            for stripe in stripes:
                lost = [b for b, d in stripe["data"] if d == failed_pos]
                if lost:
                    sid = stripe["id"]
                    self._lost_block[sid] = lost[0]
                    self._stripe_need[sid] = {
                        b for b, d in stripe["data"] if d != failed_pos
                    } | {PARITY_BASE + sid}
        self._by_member: dict[int, list[int]] = {}
        for sid, members in self._stripe_need.items():
            for m in members:
                self._by_member.setdefault(m, []).append(sid)

    def add(self, block_id: int) -> None:
        if block_id < PARITY_BASE and not self._have[block_id]:
            self._have[block_id] = True
            self._count += 1
        for sid in self._by_member.get(block_id, []):
            need = self._stripe_need.get(sid)
            if need is None:
                continue
            need.discard(block_id)
            if not need:
                del self._stripe_need[sid]
                lost = self._lost_block[sid]
                if not self._have[lost]:
                    self._have[lost] = True
                    self._count += 1

    @property
    def complete(self) -> bool:
        return self._count >= self.k


class DecodableCommit:
    """Writer-side stop rule for the speculative rateless write (§5.2.3).

    Feed commit acks in time order via :meth:`add`; the first ack at which
    at least ``target`` blocks have committed *and* the committed set peels
    returns its timestamp (``t_enough``) — ``None`` until then.  Shared by
    the closed-form and event-driven write paths so the stop rule exists
    exactly once.
    """

    def __init__(self, decoder, target: int) -> None:
        self.decoder = decoder
        self.target = target
        self.count = 0

    def add(self, t: float, block_id: int) -> float | None:
        self.decoder.add(int(block_id))
        self.count += 1
        if self.count >= self.target and self.decoder.is_complete:
            return float(t)
        return None
