"""Disk request-queue scheduling disciplines with cancellation (§5.3.3).

The dissertation implements request cancellation "by removing the
corresponding requests from the [drive's] queue"; every discipline here
supports :meth:`~RequestQueue.cancel` with a predicate over queued requests.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class RequestQueue:
    """Base class: a mutable queue of pending disk requests."""

    def __init__(self) -> None:
        self._items: list[Any] = []
        #: Deepest the queue has ever been (observability: queue-depth
        #: accounting survives even without a live tracer attached).
        self.max_depth = 0
        #: Total requests removed by :meth:`cancel` over the queue's life.
        self.cancelled_total = 0

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def push(self, request: Any) -> None:
        self._items.append(request)
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)

    def pop(self, head_cylinder: int = 0) -> Any:
        """Remove and return the next request to serve."""
        raise NotImplementedError

    def cancel(self, predicate: Callable[[Any], bool]) -> list[Any]:
        """Remove and return all queued requests matching ``predicate``."""
        hit = [r for r in self._items if predicate(r)]
        self._items = [r for r in self._items if not predicate(r)]
        self.cancelled_total += len(hit)
        return hit

    def peek_all(self) -> list[Any]:
        return list(self._items)


class FCFSQueue(RequestQueue):
    """First-come first-served (arrival order)."""

    def pop(self, head_cylinder: int = 0) -> Any:
        if not self._items:
            raise IndexError("pop from empty queue")
        return self._items.pop(0)


class SSTFQueue(RequestQueue):
    """Shortest-seek-time-first: serve the request nearest the head."""

    def pop(self, head_cylinder: int = 0) -> Any:
        if not self._items:
            raise IndexError("pop from empty queue")
        best = min(
            range(len(self._items)),
            key=lambda i: abs(self._items[i].cylinder - head_cylinder),
        )
        return self._items.pop(best)


class ElevatorQueue(RequestQueue):
    """SCAN/elevator: sweep up, then down, serving requests along the way."""

    def __init__(self) -> None:
        super().__init__()
        self.direction = 1  # +1 sweeping toward higher cylinders

    def pop(self, head_cylinder: int = 0) -> Any:
        if not self._items:
            raise IndexError("pop from empty queue")
        ahead: Optional[int] = None
        best_dist = None
        for i, r in enumerate(self._items):
            delta = (r.cylinder - head_cylinder) * self.direction
            if delta >= 0 and (best_dist is None or delta < best_dist):
                ahead, best_dist = i, delta
        if ahead is None:
            self.direction = -self.direction
            return self.pop(head_cylinder)
        return self._items.pop(ahead)


class FairShareQueue(RequestQueue):
    """Round-robin between foreground and background request classes.

    A client that queues a large burst of foreground block requests must
    not starve the competitive background stream (nor vice versa): the
    drive alternates service between the two classes whenever both have
    pending work, matching the interleaving the dissertation's experiments
    assume (§6.2.2, §6.3.2).
    """

    def __init__(self) -> None:
        super().__init__()
        self._turn_background = False

    def pop(self, head_cylinder: int = 0) -> Any:
        if not self._items:
            raise IndexError("pop from empty queue")
        want_bg = self._turn_background
        for preferred in (want_bg, not want_bg):
            for i, r in enumerate(self._items):
                if bool(getattr(r, "is_background", False)) == preferred:
                    self._turn_background = not preferred
                    return self._items.pop(i)
        raise AssertionError("unreachable")


SCHEDULERS: dict[str, type[RequestQueue]] = {
    "fcfs": FCFSQueue,
    "sstf": SSTFQueue,
    "elevator": ElevatorQueue,
    "fair": FairShareQueue,
}


def make_queue(name: str) -> RequestQueue:
    """Instantiate a scheduling discipline by name."""
    try:
        return SCHEDULERS[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
