"""Vectorised per-access block service model.

The storage-scheme simulations (Chapter 6) need, for each disk, the
completion times of a queue of data-block requests under (a) the disk's
random in-disk layout and (b) an optional competitive background workload.
Simulating every physical request as a discrete event is exact but slow;
this module computes the identical quantities in closed form with numpy:

* A data block of S sectors is accessed as ``ceil(S / bf)`` physical
  requests of ``bf`` sectors; each pays controller overhead; each positions
  (seek + rotational latency) with probability ``1 - p_seq`` (the first
  always positions); the media transfer charges track switches.  All random
  draws are sampled exactly — only their per-block *sum* is formed.

* Background requests arrive every ``interval`` seconds and share the drive
  fairly at request granularity.  Foreground completion times satisfy the
  fixed point  ``C_i = start + S_i + B(J_i) + J_i * pen`` with
  ``J_i = #arrivals before C_i``; the monotone iteration converges in a few
  rounds and is fully vectorised.  ``pen`` is the repositioning penalty the
  foreground stream pays after each interruption (only sequential streams
  lose anything).

A validation test checks this model against the event-driven
:class:`repro.disk.drive.DiskDrive` on matched workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disk.geometry import SECTOR_BYTES
from repro.disk.mechanics import DiskMechanics
from repro.disk.workload import BACKGROUND_SECTORS, InDiskLayout


@dataclass(frozen=True)
class BackgroundLoad:
    """Competitive background stream parameters for one disk.

    The per-request service is ``overhead + rotational latency + transfer``
    (the stream is locally sequential, so seeks are negligible); with the
    default drive spec the mean is ~5.6 ms, giving the dissertation's ~93 %
    disk utilisation at a 6 ms interval (§6.2.5, Fig 6-5).
    """

    interval_s: float
    sectors: int = BACKGROUND_SECTORS

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")

    def sample_services(
        self, n: int, mechanics: DiskMechanics, spt: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n`` background request service times."""
        t = mechanics.spec.controller_overhead_s
        rot = mechanics.sample_rotational_latency(rng, n)
        xfer = float(mechanics.transfer_time(self.sectors, spt))
        return t + rot + xfer

    def mean_service(self, mechanics: DiskMechanics, spt: int) -> float:
        return (
            mechanics.spec.controller_overhead_s
            + mechanics.spec.avg_rotational_latency_s
            + float(mechanics.transfer_time(self.sectors, spt))
        )

    def utilization(self, mechanics: DiskMechanics, spt: int) -> float:
        """Fraction of disk time the stream consumes when served alone."""
        return min(1.0, self.mean_service(mechanics, spt) / self.interval_s)


class BlockService:
    """Block-level service model of one disk for one access.

    Parameters
    ----------
    mechanics:
        Drive mechanics (shared across disks).
    layout:
        This disk's random in-disk layout (blocking factor, p_seq).
    spt:
        Sectors-per-track of the zone holding the data (fixes media rate).
    rng:
        This disk's random stream.
    background:
        Optional competitive load.
    timeline:
        Optional :class:`repro.faults.timeline.DiskTimeline`; when set,
        completion times are warped through the disk's fault profile
        (slowdowns stretch them, outages push them past the recovery, a
        permanent fail-stop maps unfinished work to ``inf``).  ``None``
        keeps the arithmetic bit-identical to an unfaulted run.
    phase_rng:
        Dedicated stream for the background stream's initial phase draw
        (the ``"bgphase"`` :data:`repro.sim.rng.STREAMS` entry).  ``None``
        falls back to drawing the phase from ``rng`` — the historical
        behaviour, which silently interleaved one extra draw into the
        service stream and was invisible to the SIM011 stream discipline.
    """

    def __init__(
        self,
        mechanics: DiskMechanics,
        layout: InDiskLayout,
        spt: int,
        rng: np.random.Generator,
        background: BackgroundLoad | None = None,
        failed: bool = False,
        timeline=None,
        phase_rng: np.random.Generator | None = None,
    ) -> None:
        self.mechanics = mechanics
        self.layout = layout
        self.spt = int(spt)
        self.rng = rng
        self.background = background
        self.failed = failed
        self.timeline = timeline
        self.phase_rng = phase_rng
        # Deterministic per-block-size constants (sectors, requests,
        # transfer time) and the background interleave parameters: both
        # are pure functions of layout/zone/spec, cached so the adaptive
        # engine's repeated per-batch calls skip the recomputation.
        self._block_params_cache: dict[int, tuple[int, int, float]] = {}
        self._bg_plan: tuple[float, float, float] | None = None

    # -- nominal block service ------------------------------------------------
    def block_service_times(self, n_blocks: int, block_bytes: int) -> np.ndarray:
        """Sample the stand-alone service time of ``n_blocks`` data blocks."""
        if n_blocks == 0:
            return np.empty(0, dtype=np.float64)
        mech = self.mechanics
        spec = mech.spec
        sectors, n_req, xfer = self._block_params(block_bytes)

        # Positioning events per block: each request positions with
        # probability (1 - p_seq); a fully sequential stream flows across
        # block boundaries too, so only the access's very first request is
        # forced to position.
        n_pos = self.rng.binomial(n_req, 1.0 - self.layout.p_sequential, size=n_blocks)
        n_pos[0] += 1

        # Sum of exact positioning draws per block (bincount handles blocks
        # with zero positioning events cleanly).
        total = int(n_pos.sum())
        if total:
            draws = mech.sample_local_seek(self.rng, total)
            draws += mech.sample_rotational_latency(self.rng, total)
            owner = np.repeat(np.arange(n_blocks), n_pos)
            total_pos = np.bincount(owner, weights=draws, minlength=n_blocks)
        else:
            total_pos = np.zeros(n_blocks, dtype=np.float64)

        # In-place over the bincount result; float addition is commutative
        # bit-for-bit, so this equals ``overhead + total_pos + xfer``.
        total_pos += n_req * spec.controller_overhead_s
        total_pos += xfer
        return total_pos

    def standalone_bandwidth(self, block_bytes: int = 1 << 20, n_blocks: int = 256) -> float:
        """Monte-Carlo mean bandwidth (bytes/s) without background load."""
        t = self.block_service_times(n_blocks, block_bytes)
        return n_blocks * block_bytes / float(t.sum())

    def _block_params(self, block_bytes: int) -> tuple[int, int, float]:
        """Cached ``(sectors, requests, transfer_time)`` for a block size."""
        params = self._block_params_cache.get(block_bytes)
        if params is None:
            sectors = max(1, block_bytes // SECTOR_BYTES)
            n_req = -(-sectors // self.layout.blocking_factor)
            xfer = float(self.mechanics.transfer_time(sectors, self.spt))
            params = (sectors, n_req, xfer)
            self._block_params_cache[block_bytes] = params
        return params

    # -- queue completion times --------------------------------------------------
    def requests_per_block(self, block_bytes: int) -> int:
        """Physical requests per data block at this disk's blocking factor."""
        return self._block_params(block_bytes)[1]

    #: Minimum service share the drive's scheduler guarantees the
    #: foreground stream: an over-saturating background queue backs up
    #: instead of starving other streams.  Calibrated so a 6 ms-interval
    #: background (~93 % utilisation plus repositioning loss) leaves a fast
    #: sequential foreground ~2 MB/s, matching Fig 6-5.
    MIN_FOREGROUND_SHARE = 0.05

    def completions(
        self, services: np.ndarray, start: float, reqs_per_item: int = 1
    ) -> np.ndarray:
        """Completion time of each queued block, background interleaved.

        ``services`` is the nominal per-block service vector (queue order);
        the disk serves them back-to-back starting at ``start``, interleaved
        FCFS with the background stream: each background request due before
        a foreground block finishes delays it by its own service plus the
        foreground stream's repositioning.  When the background alone would
        exceed ``1 - MIN_FOREGROUND_SHARE`` of the drive, its surplus
        arrivals queue (the drive admits them at the saturation rate), so
        the foreground dilates but never starves (§6.3.2).
        """
        services = np.asarray(services, dtype=np.float64)
        if self.failed:
            # A failed disk never responds — its blocks are erasures.
            return np.full(services.size, np.inf)
        s_cum = services.cumsum()
        s_cum += start
        bg = self.background
        if bg is None or services.size == 0:
            return self._warp(s_cum, start)

        # Repositioning penalty per interruption: only a sequential
        # foreground stream loses positioning work to interleaving.  The
        # (pen, per_bg, interval) triple is deterministic per instance.
        plan = self._bg_plan
        if plan is None:
            pen = self.layout.p_sequential * self.mechanics.mean_positioning_time()
            per_bg = bg.mean_service(self.mechanics, self.spt) + pen
            # Effective admission interval: the drive serves background no
            # faster than the fairness floor allows.
            interval = max(bg.interval_s, per_bg / (1.0 - self.MIN_FOREGROUND_SHARE))
            plan = self._bg_plan = (pen, per_bg, interval)
        pen, per_bg, interval = plan
        eff_util = per_bg / interval
        phase_rng = self.phase_rng if self.phase_rng is not None else self.rng
        phase = start + phase_rng.random() * interval

        # Draw enough background services up front; extend if needed.
        horizon = float(s_cum[-1] - start) / max(1e-3, 1.0 - eff_util)
        est = int((horizon / interval) * 1.5 + 16)
        bg_draws = bg.sample_services(est, self.mechanics, self.spt, self.rng)
        b_cum = np.concatenate([[0.0], np.cumsum(bg_draws)])

        c = s_cum.copy()
        for _ in range(500):
            j = np.floor((c - phase) / interval).astype(np.int64) + 1
            np.clip(j, 0, None, out=j)
            if j[-1] >= b_cum.size - 1:
                more = bg.sample_services(
                    int(j[-1] - b_cum.size + 2 + 64), self.mechanics, self.spt, self.rng
                )
                b_cum = np.concatenate([b_cum, b_cum[-1] + np.cumsum(more)])
            c_new = s_cum + b_cum[j] + j * pen
            if np.allclose(c_new, c, rtol=0, atol=1e-12):
                c = c_new
                break
            c = c_new
        return self._warp(c, start)

    def _warp(self, completions: np.ndarray, start: float) -> np.ndarray:
        """Apply the disk's fault profile (identity when no timeline)."""
        if self.timeline is None:
            return completions
        return self.timeline.warp(completions, start)

    def serve(
        self, n_blocks: int, block_bytes: int, start: float
    ) -> np.ndarray:
        """Sample services and return queue completion times in one call."""
        return self.completions(
            self.block_service_times(n_blocks, block_bytes),
            start,
            reqs_per_item=self.requests_per_block(block_bytes),
        )


def served_before(completions: np.ndarray, cancel_time: float) -> int:
    """How many queued blocks the disk transferred by ``cancel_time``.

    The block in service when the cancel arrives is counted too — its bytes
    are already in flight (§4.1.2).  Blocks that will never complete
    (failed disk: infinite completion time) are never counted.
    """
    completions = np.asarray(completions)
    finite = completions[np.isfinite(completions)]
    done = int(np.searchsorted(finite, cancel_time, side="right"))
    if done < finite.size:
        done += 1  # in-flight block completes regardless
    return done
