"""Event-driven disk drive entity (the simulator's "virtual disk").

A :class:`DiskDrive` owns a request queue with a pluggable scheduling
discipline, a segment cache, head state (current cylinder / last LBA), and a
service process that charges controller overhead, seek, rotational latency,
track switches and media transfer per request.  Cancellation removes pending
requests from the queue (§5.3.3).  A background-workload process can inject
competitive requests into the same queue (§6.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Optional

import numpy as np

from repro.disk.cache import SegmentCache
from repro.disk.geometry import SECTOR_BYTES
from repro.disk.mechanics import DiskMechanics
from repro.disk.scheduler import RequestQueue, make_queue
from repro.disk.workload import BackgroundWorkload
from repro.sim import Environment, Event

_req_ids = count()
_drive_ids = count()

#: Interface (bus) transfer rate for cache hits, bytes/s.
BUS_RATE_BPS = 100e6


@dataclass
class DiskRequest:
    """One physical request submitted to a drive.

    Attributes
    ----------
    lba, sectors:
        Target extent.
    tag:
        Opaque owner handle (used by cancellation predicates).
    is_background:
        True for competitive-workload requests.
    done:
        Fires with the completion time when served; with ``None`` when
        cancelled.
    """

    lba: int
    sectors: int
    tag: Any = None
    is_background: bool = False
    done: Optional[Event] = None
    req_id: int = field(default_factory=lambda: next(_req_ids))
    cylinder: int = 0  # filled by the drive on submit (schedulers use it)

    @property
    def bytes(self) -> int:
        return self.sectors * SECTOR_BYTES


class DiskDrive:
    """An event-driven hard-drive model.

    Parameters
    ----------
    env:
        Simulation environment.
    mechanics:
        Mechanical model (shared geometry).
    rng:
        Random stream for seek distances / rotational phases.
    scheduler:
        Queue discipline name: ``fcfs``, ``sstf`` or ``elevator``.
    cache:
        Optional segment cache (pass ``None`` to disable).
    """

    def __init__(
        self,
        env: Environment,
        mechanics: DiskMechanics,
        rng: np.random.Generator,
        scheduler: str = "fcfs",
        cache: SegmentCache | None = None,
        service_time_fn: Optional[Callable[["DiskRequest"], float]] = None,
    ) -> None:
        self.env = env
        self.mechanics = mechanics
        self.rng = rng
        self.queue: RequestQueue = make_queue(scheduler)
        self.cache = cache
        #: Optional override of the sector-level timing — e.g. the
        #: reference engine substitutes the calibrated block-service model
        #: so both engines draw from one distribution.
        self.service_time_fn = service_time_fn
        self.current_cylinder = 0
        self._last_end_lba: Optional[int] = None
        self._wakeup: Optional[Event] = None
        self.busy = False
        self.served_requests = 0
        self.served_bytes = 0
        self.busy_time = 0.0
        #: Fault-injection state (see :mod:`repro.faults`): a failed drive
        #: answers every request with an infinite completion time; a slow
        #: factor > 1 stretches each service begun while it is in effect.
        self.failed = False
        self.slow_factor = 1.0
        self._abort: Optional[Event] = None
        self.tracer = env.tracer
        self.obs_name = f"drive{next(_drive_ids)}"
        env.process(self._run(), name="disk-drive")

    # -- client interface ---------------------------------------------------
    def submit(self, request: DiskRequest) -> DiskRequest:
        """Queue a request; its ``done`` event fires on completion.

        Submitting to a failed drive completes the request immediately with
        an infinite timestamp — the erasure signal the schemes act on.
        """
        if request.done is None:
            request.done = self.env.event()
        if self.failed:
            request.done.succeed(float("inf"))
            return request
        request.cylinder = int(self.mechanics.geometry.cylinder_of_lba(request.lba))
        self.queue.push(request)
        if self.tracer.enabled:
            self.tracer.counter(
                "drive.queue_depth", self.env.now, len(self.queue), track=self.obs_name
            )
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed(None)
        return request

    def read(self, lba: int, sectors: int, tag: Any = None) -> DiskRequest:
        """Convenience: submit a foreground read."""
        return self.submit(DiskRequest(lba=lba, sectors=sectors, tag=tag))

    def cancel(self, predicate: Callable[[DiskRequest], bool]) -> int:
        """Remove queued requests matching ``predicate``; return the count.

        The request currently being served is not interrupted (its bytes
        are already in flight).
        """
        removed = self.queue.cancel(predicate)
        for req in removed:
            if req.done is not None and not req.done.triggered:
                req.done.succeed(None)
        if removed and self.tracer.enabled:
            self.tracer.count("drive.cancelled_requests", len(removed))
            self.tracer.instant(
                "drive.cancel",
                "drive",
                self.env.now,
                track=self.obs_name,
                args={"removed": len(removed)},
            )
        return len(removed)

    def utilization(self) -> float:
        """Fraction of elapsed time spent serving requests."""
        return self.busy_time / self.env.now if self.env.now > 0 else 0.0

    # -- fault injection -------------------------------------------------------
    def fail(self) -> None:
        """Fail-stop the drive *now*.

        The in-flight request (if any) aborts with an infinite completion,
        every queued request flushes the same way, and later submissions
        complete immediately at ``inf`` until :meth:`recover`.
        """
        if self.failed:
            return
        self.failed = True
        flushed = self.queue.cancel(lambda req: True)
        for req in flushed:
            if req.done is not None and not req.done.triggered:
                req.done.succeed(float("inf"))
        if self._abort is not None and not self._abort.triggered:
            self._abort.succeed(None)
        if self.tracer.enabled:
            self.tracer.instant(
                "drive.fail",
                "drive",
                self.env.now,
                track=self.obs_name,
                args={"flushed": len(flushed)},
            )

    def recover(self) -> None:
        """Return a failed drive to service (its queue starts empty)."""
        if not self.failed:
            return
        self.failed = False
        self._last_end_lba = None  # the head re-homes on restart
        if self.tracer.enabled:
            self.tracer.instant(
                "drive.recover", "drive", self.env.now, track=self.obs_name
            )

    def set_slow(self, factor: float) -> None:
        """Stretch every subsequently started service by ``factor`` (>= 1)."""
        if factor < 1.0:
            raise ValueError("slow factor must be >= 1")
        self.slow_factor = float(factor)
        if self.tracer.enabled:
            self.tracer.instant(
                "drive.slow",
                "drive",
                self.env.now,
                track=self.obs_name,
                args={"factor": factor},
            )

    # -- background workload --------------------------------------------------
    def attach_background(self, workload: BackgroundWorkload) -> None:
        """Start injecting the competitive request stream into this drive."""
        if workload.enabled:
            self.env.process(self._background_loop(workload), name="disk-bg")

    def _background_loop(self, workload: BackgroundWorkload):
        interval = workload.interval_s
        yield self.env.timeout(workload.rng.random() * interval)
        while True:
            pattern = workload.next_request()
            self.submit(
                DiskRequest(
                    lba=pattern.lba,
                    sectors=pattern.sectors,
                    is_background=True,
                    tag="background",
                )
            )
            yield self.env.timeout(interval)

    # -- service loop ----------------------------------------------------------
    def _run(self):
        env = self.env
        while True:
            while not self.queue:
                self._wakeup = env.event()
                yield self._wakeup
                self._wakeup = None
            req = self.queue.pop(self.current_cylinder)
            self.busy = True
            t_start = env.now
            service = self._service_time(req) * self.slow_factor
            # Race the service against a fail-stop: a drive that dies
            # mid-transfer never delivers the request.
            done = env.timeout(service)
            self._abort = env.event()
            yield env.any_of([done, self._abort])
            # A Timeout is `triggered` from construction (it carries its
            # value immediately); only `processed` says it actually fired.
            aborted = self._abort.triggered and not done.processed
            self._abort = None
            self.busy = False
            if aborted:
                self.busy_time += env.now - t_start
                if req.done is not None and not req.done.triggered:
                    req.done.succeed(float("inf"))
                if self.tracer.enabled:
                    self.tracer.instant(
                        "drive.abort",
                        "drive",
                        env.now,
                        track=self.obs_name,
                        args={"lba": req.lba, "sectors": req.sectors},
                    )
                continue
            self.busy_time += service
            self.served_requests += 1
            self.served_bytes += req.bytes
            if self.tracer.enabled:
                self.tracer.span(
                    "drive.service",
                    "drive",
                    t_start,
                    env.now,
                    track=self.obs_name,
                    args={
                        "lba": req.lba,
                        "sectors": req.sectors,
                        "background": req.is_background,
                    },
                )
                self.tracer.counter(
                    "drive.queue_depth", env.now, len(self.queue), track=self.obs_name
                )
            if req.done is not None and not req.done.triggered:
                req.done.succeed(env.now)

    def _service_time(self, req: DiskRequest) -> float:
        if self.service_time_fn is not None:
            return self.service_time_fn(req)
        mech = self.mechanics
        spec = mech.spec
        t = spec.controller_overhead_s

        if self.cache is not None and self.cache.lookup(req.lba, req.sectors):
            # Cache hit: interface-speed transfer, no mechanical work.
            if self.tracer.enabled:
                self.tracer.count("drive.cache_hits")
            return t + req.bytes / BUS_RATE_BPS
        if self.cache is not None and self.tracer.enabled:
            self.tracer.count("drive.cache_misses")

        sequential = self._last_end_lba is not None and req.lba == self._last_end_lba
        if not sequential:
            dist = abs(req.cylinder - self.current_cylinder)
            t += float(mech.seek_time(dist))
            t += float(mech.sample_rotational_latency(self.rng, 1)[0])
        spt = int(mech.geometry.spt_of_lba(req.lba))
        t += float(mech.transfer_time(req.sectors, spt))

        self.current_cylinder = int(
            mech.geometry.cylinder_of_lba(req.lba + req.sectors - 1)
        )
        self._last_end_lba = req.lba + req.sectors
        if self.cache is not None:
            self.cache.fill(req.lba, req.sectors)
        return t
