"""On-drive segment cache (the 2-16 MB "hard disk cache" of §2.1.1).

Real drive controllers keep a handful of read segments and extend them by
read-ahead; a request that falls entirely inside a cached segment is served
at interface speed with no mechanical work.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.disk.geometry import SECTOR_BYTES


class SegmentCache:
    """An LRU cache of contiguous LBA segments.

    Parameters
    ----------
    capacity_bytes:
        Total cache size (default 8 MB).
    segments:
        Maximum number of concurrently tracked segments.
    read_ahead_sectors:
        Extra sectors speculatively appended after each fill.
    """

    def __init__(
        self,
        capacity_bytes: int = 8 << 20,
        segments: int = 16,
        read_ahead_sectors: int = 64,
    ) -> None:
        if capacity_bytes <= 0 or segments <= 0:
            raise ValueError("capacity and segment count must be positive")
        self.capacity_sectors = capacity_bytes // SECTOR_BYTES
        self.max_segments = segments
        self.read_ahead_sectors = read_ahead_sectors
        # start -> end (exclusive), in LRU order (oldest first).
        self._segments: OrderedDict[int, int] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def used_sectors(self) -> int:
        return sum(end - start for start, end in self._segments.items())

    def lookup(self, lba: int, sectors: int) -> bool:
        """True (and refresh LRU) if the request lies inside one segment."""
        for start, end in self._segments.items():
            if start <= lba and lba + sectors <= end:
                self._segments.move_to_end(start)
                self.hits += 1
                return True
        self.misses += 1
        return False

    def fill(self, lba: int, sectors: int) -> None:
        """Record a completed media read (plus read-ahead) in the cache."""
        start, end = lba, lba + sectors + self.read_ahead_sectors
        # Merge with an adjacent/overlapping segment if one exists.
        merged = None
        for s, e in list(self._segments.items()):
            if s <= end and start <= e:
                merged = (min(s, start), max(e, end))
                del self._segments[s]
                break
        if merged:
            start, end = merged
        self._segments[start] = end
        self._segments.move_to_end(start)
        self._evict()

    def _evict(self) -> None:
        while len(self._segments) > self.max_segments or (
            self.used_sectors > self.capacity_sectors and len(self._segments) > 1
        ):
            self._segments.popitem(last=False)
        # A single oversized segment is trimmed to capacity.
        if self.used_sectors > self.capacity_sectors and len(self._segments) == 1:
            (start, end), = self._segments.items()
            self._segments[start] = start + self.capacity_sectors

    def stats(self) -> dict:
        """Hit/miss/occupancy snapshot (fed to the tracer by the drive)."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "segments": len(self._segments),
            "used_sectors": self.used_sectors,
        }

    def clear(self) -> None:
        self._segments.clear()
