"""Zoned disk geometry: cylinders, heads, tracks, sectors, LBA mapping.

Modern drives record more sectors on outer tracks (zoned bit recording,
§2.1.1); the resulting ~2x media-rate spread between outer and inner zones
is one of the performance-variation sources the experiments exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SECTOR_BYTES = 512


@dataclass(frozen=True)
class Zone:
    """A contiguous range of cylinders sharing one track format.

    Attributes
    ----------
    cyl_lo, cyl_hi:
        Inclusive cylinder range.
    sectors_per_track:
        Track capacity inside this zone.
    """

    cyl_lo: int
    cyl_hi: int
    sectors_per_track: int

    @property
    def cylinders(self) -> int:
        return self.cyl_hi - self.cyl_lo + 1


class DiskGeometry:
    """Maps logical block addresses to physical positions.

    Parameters
    ----------
    zones:
        Zones ordered outer (fastest) to inner, covering 0..C-1 contiguously.
    heads:
        Number of recording surfaces (tracks per cylinder).
    """

    def __init__(self, zones: list[Zone], heads: int = 4) -> None:
        if heads < 1:
            raise ValueError("heads must be >= 1")
        if not zones:
            raise ValueError("at least one zone required")
        expect = 0
        for z in zones:
            if z.cyl_lo != expect:
                raise ValueError(f"zones must tile cylinders; gap at {expect}")
            if z.sectors_per_track < 1:
                raise ValueError("sectors_per_track must be >= 1")
            expect = z.cyl_hi + 1
        self.zones = list(zones)
        self.heads = heads
        self.cylinders = expect
        # Cumulative sector count at the start of each zone.
        starts = [0]
        for z in zones:
            starts.append(starts[-1] + z.cylinders * heads * z.sectors_per_track)
        self._zone_sector_starts = np.array(starts, dtype=np.int64)
        self._zone_cyl_los = np.array([z.cyl_lo for z in zones], dtype=np.int64)
        self._zone_spts = np.array([z.sectors_per_track for z in zones], dtype=np.int64)

    @property
    def total_sectors(self) -> int:
        return int(self._zone_sector_starts[-1])

    @property
    def capacity_bytes(self) -> int:
        return self.total_sectors * SECTOR_BYTES

    def zone_index_of_lba(self, lba) -> np.ndarray:
        """Zone index for each LBA (vectorised)."""
        lba = np.asarray(lba, dtype=np.int64)
        if np.any((lba < 0) | (lba >= self.total_sectors)):
            raise ValueError("LBA out of range")
        return np.searchsorted(self._zone_sector_starts, lba, side="right") - 1

    def cylinder_of_lba(self, lba) -> np.ndarray:
        """Cylinder holding each LBA (vectorised)."""
        lba = np.asarray(lba, dtype=np.int64)
        zi = self.zone_index_of_lba(lba)
        off = lba - self._zone_sector_starts[zi]
        per_cyl = self.heads * self._zone_spts[zi]
        return self._zone_cyl_los[zi] + off // per_cyl

    def spt_of_lba(self, lba) -> np.ndarray:
        """Sectors-per-track at each LBA's zone (vectorised)."""
        return self._zone_spts[self.zone_index_of_lba(lba)]

    def spt_at_cylinder(self, cylinder: int) -> int:
        for z in self.zones:
            if z.cyl_lo <= cylinder <= z.cyl_hi:
                return z.sectors_per_track
        raise ValueError(f"cylinder {cylinder} out of range")

    def locate(self, lba: int) -> tuple[int, int, int]:
        """Return (cylinder, head, sector-in-track) for a single LBA."""
        lba = int(lba)
        zi = int(self.zone_index_of_lba(lba))
        z = self.zones[zi]
        off = lba - int(self._zone_sector_starts[zi])
        per_cyl = self.heads * z.sectors_per_track
        cyl = z.cyl_lo + off // per_cyl
        rem = off % per_cyl
        head = rem // z.sectors_per_track
        sector = rem % z.sectors_per_track
        return cyl, head, sector

    def track_crossings(self, lba: int, sectors: int) -> int:
        """Number of track boundaries crossed by a contiguous transfer."""
        if sectors <= 0:
            return 0
        zi = int(self.zone_index_of_lba(lba))
        spt = self.zones[zi].sectors_per_track
        off = lba - int(self._zone_sector_starts[zi])
        first = off // spt
        last = (off + sectors - 1) // spt
        return int(last - first)


def default_geometry() -> DiskGeometry:
    """~110 GB, 7200 rpm class geometry (IBM Deskstar 7K400 era, §6.2.5).

    Eight zones, 60 000 cylinders, 4 heads, sectors per track falling from
    1200 (outer) to 620 (inner): a ~1.9x media-rate spread.
    """
    spts = [1200, 1110, 1030, 950, 870, 790, 705, 620]
    per_zone = 60_000 // len(spts)
    zones = []
    lo = 0
    for spt in spts:
        zones.append(Zone(lo, lo + per_zone - 1, spt))
        lo += per_zone
    return DiskGeometry(zones, heads=4)
