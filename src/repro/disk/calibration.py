"""Disk calibration: regenerate the Table 6-1 bandwidth grid.

Measures the mean bandwidth delivered by each (blocking factor,
p_sequential) configuration — the dissertation's grid spans ~0.5 to
53 MB/s with mean ~14.9 MB/s.  The shape to preserve: bandwidth grows
monotonically with blocking factor; sequential layouts beat random ones by
an order of magnitude at small blocking factors; the overall spread is
~100x.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disk.mechanics import DiskMechanics
from repro.disk.service import BlockService
from repro.disk.workload import BLOCKING_FACTORS, InDiskLayout

MB = 1 << 20


@dataclass(frozen=True)
class CalibrationCell:
    """One measured grid entry."""

    blocking_factor: int
    p_sequential: float
    bandwidth_mbps: float


def measure_bandwidth(
    mechanics: DiskMechanics,
    layout: InDiskLayout,
    rng: np.random.Generator,
    total_mb: int = 64,
    block_bytes: int = 1 * MB,
    spt: int | None = None,
) -> float:
    """Mean delivered bandwidth (MB/s) for one layout configuration."""
    if spt is None:
        zones = mechanics.geometry.zones
        spt = zones[len(zones) // 2].sectors_per_track
    service = BlockService(mechanics, layout, spt, rng)
    n_blocks = max(1, total_mb * MB // block_bytes)
    times = service.block_service_times(n_blocks, block_bytes)
    return n_blocks * block_bytes / float(times.sum()) / MB


def table_6_1(
    mechanics: DiskMechanics | None = None,
    rng: np.random.Generator | None = None,
    total_mb: int = 64,
) -> list[CalibrationCell]:
    """Measure the full Table 6-1 grid."""
    mechanics = mechanics or DiskMechanics()
    rng = rng or np.random.default_rng(0)
    cells = []
    for p_seq in (0.0, 1.0):
        for bf in BLOCKING_FACTORS:
            bw = measure_bandwidth(
                mechanics, InDiskLayout(bf, p_seq), rng, total_mb=total_mb
            )
            cells.append(CalibrationCell(bf, p_seq, bw))
    return cells


def grid_statistics(cells: list[CalibrationCell]) -> dict:
    """Summary used to compare against the paper's grid."""
    bws = np.array([c.bandwidth_mbps for c in cells])
    return {
        "mean_mbps": float(bws.mean()),
        "min_mbps": float(bws.min()),
        "max_mbps": float(bws.max()),
        "spread": float(bws.max() / bws.min()),
    }


def format_table(cells: list[CalibrationCell]) -> str:
    """Render the grid the way Table 6-1 prints it."""
    lines = ["Blocking Factor | " + " | ".join(f"{bf:>6}" for bf in BLOCKING_FACTORS)]
    for p_seq in (0.0, 1.0):
        row = [c.bandwidth_mbps for c in cells if c.p_sequential == p_seq]
        lines.append(
            f"p_seq={int(p_seq)}        | "
            + " | ".join(f"{bw:6.2f}" for bw in row)
        )
    return "\n".join(lines)
