"""DiskSim-like block-level hard-drive model (§2.1.1, §6.2.2 "Virtual Disk").

The drive model captures the behaviours the dissertation's experiments
depend on: zoned geometry with cylinder-dependent transfer rates, a seek
curve, rotational latency, per-request controller overhead, track switches,
an on-drive segment cache, pluggable request scheduling with cancellation,
and competitive background workloads.

Two complementary interfaces:

* :class:`repro.disk.drive.DiskDrive` — an event-driven drive entity with a
  request queue, used for calibration (Table 6-1) and component tests.
* :class:`repro.disk.service.BlockService` — a vectorised per-access block
  service model derived from the same mechanics, used by the storage-scheme
  simulations (validated against the event-driven drive).
"""

from repro.disk.drive import DiskDrive, DiskRequest
from repro.disk.geometry import DiskGeometry, Zone, default_geometry
from repro.disk.mechanics import DiskMechanics, DriveSpec
from repro.disk.scheduler import ElevatorQueue, FCFSQueue, SSTFQueue
from repro.disk.service import BackgroundLoad, BlockService
from repro.disk.workload import InDiskLayout, draw_layout

__all__ = [
    "BackgroundLoad",
    "BlockService",
    "DiskDrive",
    "DiskGeometry",
    "DiskMechanics",
    "DiskRequest",
    "DriveSpec",
    "ElevatorQueue",
    "FCFSQueue",
    "InDiskLayout",
    "SSTFQueue",
    "Zone",
    "default_geometry",
    "draw_layout",
]
