"""Synthetic workload generation (§6.2.5).

The in-disk data layout of each access is modelled with two parameters, as
in DiskSim: the **blocking factor** (average sectors per physical request)
and the **probability of sequential access** (a sequential request starts at
the address following the previous one and skips head positioning).  Per
§6.2.5 every disk draws a blocking factor from {8, 16, ..., 1024} and a
sequential probability from {0, 1}, producing the ~100-fold bandwidth spread
of Table 6-1.

Background (competitive) workloads are sequences of mid-size requests
(~50 sectors) arriving at a fixed interval; §6.2.5 varies the interval from
6 ms (≈93 % disk utilisation) to 200 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

#: Blocking factors explored by Table 6-1.
BLOCKING_FACTORS = (8, 16, 32, 64, 128, 256, 512, 1024)

#: Mean background request size (sectors), §6.2.5.
BACKGROUND_SECTORS = 50


@dataclass(frozen=True)
class InDiskLayout:
    """Random in-disk layout configuration of one disk.

    Attributes
    ----------
    blocking_factor:
        Sectors per contiguous physical request.
    p_sequential:
        Probability that a request continues sequentially from the previous
        one (0 or 1 in the dissertation's experiments).
    """

    blocking_factor: int
    p_sequential: float

    def __post_init__(self) -> None:
        if self.blocking_factor < 1:
            raise ValueError("blocking_factor must be >= 1")
        if not 0.0 <= self.p_sequential <= 1.0:
            raise ValueError("p_sequential must be in [0, 1]")


#: The 16 possible heterogeneous layouts, keyed by their two draw indices.
#: :class:`InDiskLayout` is frozen, so sharing instances is safe, and the
#: memo spares a dataclass construction + validation per disk per trial.
_LAYOUTS = {
    (i, j): InDiskLayout(bf, float(j))
    for i, bf in enumerate(BLOCKING_FACTORS)
    for j in (0, 1)
}


def layout_at(bf_index: int, seq_index: int) -> InDiskLayout:
    """The memoised layout for the two draw indices.

    Used by batched redraws that pull many ``(bf, seq)`` index pairs from
    one broadcast ``rng.integers`` call and map them here.
    """
    return _LAYOUTS[bf_index, seq_index]


def draw_layout(rng: np.random.Generator) -> InDiskLayout:
    """Draw a heterogeneous-layout configuration (§6.2.5).

    ``BLOCKING_FACTORS[rng.integers(0, 8)]`` consumes the exact bit
    stream ``rng.choice(BLOCKING_FACTORS)`` does (choice defers to the
    same bounded-integer draw), so this stays bit-identical to the seed
    while skipping choice's per-call array setup.
    """
    return _LAYOUTS[int(rng.integers(0, 8)), int(rng.integers(0, 2))]


def homogeneous_layout(
    blocking_factor: int = 256, p_sequential: float = 1.0
) -> InDiskLayout:
    """The fixed layout used by the homogeneous-environment experiments."""
    return InDiskLayout(blocking_factor, p_sequential)


@dataclass(frozen=True)
class AccessPattern:
    """One physical request of a synthetic stream."""

    lba: int
    sectors: int
    sequential: bool


class SyntheticWorkload:
    """Generate the physical request stream for reading ``total_sectors``.

    Requests are ``blocking_factor`` sectors each; each is sequential to its
    predecessor with probability ``p_sequential``, otherwise it lands at a
    random position in the file's extent.

    Parameters
    ----------
    layout:
        Blocking factor and sequential probability.
    extent_start, extent_sectors:
        The allocated LBA range the data scatters within.
    """

    def __init__(
        self,
        layout: InDiskLayout,
        extent_start: int,
        extent_sectors: int,
        rng: np.random.Generator,
    ) -> None:
        if extent_sectors < layout.blocking_factor:
            raise ValueError("extent smaller than one request")
        self.layout = layout
        self.extent_start = extent_start
        self.extent_sectors = extent_sectors
        self.rng = rng
        self._last_end: int | None = None

    def requests(self, total_sectors: int) -> Iterator[AccessPattern]:
        """Yield the request stream covering ``total_sectors``."""
        bf = self.layout.blocking_factor
        remaining = total_sectors
        while remaining > 0:
            size = min(bf, remaining)
            seq = (
                self._last_end is not None
                and self.rng.random() < self.layout.p_sequential
                and self._last_end + size <= self.extent_start + self.extent_sectors
            )
            if seq:
                lba = self._last_end
            else:
                hi = self.extent_sectors - size
                lba = self.extent_start + int(self.rng.integers(0, hi + 1))
            self._last_end = lba + size
            remaining -= size
            yield AccessPattern(lba=lba, sectors=size, sequential=bool(seq))


class BackgroundWorkload:
    """Competitive background request stream for one disk.

    Parameters
    ----------
    interval_s:
        Fixed inter-arrival time; ``None`` or ``inf`` disables the stream.
    sectors:
        Request size (sectors); defaults to the dissertation's ~50.
    extent_sectors:
        Range the random background accesses scatter within.
    """

    def __init__(
        self,
        interval_s: float | None,
        rng: np.random.Generator,
        sectors: int = BACKGROUND_SECTORS,
        extent_start: int = 0,
        extent_sectors: int = 1 << 24,
    ) -> None:
        if interval_s is not None and interval_s <= 0:
            raise ValueError("interval must be positive")
        self.interval_s = interval_s
        self.sectors = sectors
        self.extent_start = extent_start
        self.extent_sectors = extent_sectors
        self.rng = rng

    @property
    def enabled(self) -> bool:
        return self.interval_s is not None and np.isfinite(self.interval_s)

    def arrivals(self, start: float, end: float) -> np.ndarray:
        """Arrival times in [start, end) — one every ``interval_s``."""
        if not self.enabled:
            return np.empty(0, dtype=np.float64)
        first = start + self.rng.random() * self.interval_s
        return np.arange(first, end, self.interval_s)

    def next_request(self) -> AccessPattern:
        hi = self.extent_sectors - self.sectors
        lba = self.extent_start + int(self.rng.integers(0, hi + 1))
        return AccessPattern(lba=lba, sectors=self.sectors, sequential=False)
