"""Drive mechanics: seek curve, rotation, media transfer, overheads.

All times are in **seconds**.  The default :class:`DriveSpec` is calibrated
so that the synthetic-workload bandwidth grid approximates Table 6-1 of the
dissertation (0.5 ... 53 MB/s across blocking factors 8..1024 and
sequential-access probability 0/1, mean ~15 MB/s).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.disk.geometry import SECTOR_BYTES, DiskGeometry, default_geometry


@dataclass(frozen=True)
class DriveSpec:
    """Mechanical and controller parameters of a drive model.

    Attributes
    ----------
    rpm:
        Spindle speed.
    seek_base_s, seek_sqrt_s, seek_linear_s:
        Seek curve ``base + sqrt_coeff*sqrt(d) + linear_coeff*d`` for a
        d-cylinder move (0 for d = 0) — the standard concave model of
        Ruemmler & Wilkes.
    head_switch_s:
        Time to activate another head within a cylinder.
    track_switch_s:
        Time charged per track boundary crossed during a transfer.
    controller_overhead_s:
        Fixed command-processing cost per request.
    locality_span_cylinders:
        Span of the extent within which a file's random in-disk layout
        scatters its sectors (random seeks are local to the allocation,
        not full-stroke).
    """

    rpm: float = 7200.0
    seek_base_s: float = 0.0006
    seek_sqrt_s: float = 0.000050
    seek_linear_s: float = 0.0000001
    head_switch_s: float = 0.0008
    track_switch_s: float = 0.0009
    controller_overhead_s: float = 0.0010
    locality_span_cylinders: int = 2000

    @property
    def rotation_period_s(self) -> float:
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency_s(self) -> float:
        return 0.5 * self.rotation_period_s


class DiskMechanics:
    """Computes service-time components from a :class:`DriveSpec`.

    Parameters
    ----------
    spec:
        Drive parameters.
    geometry:
        Zoned geometry (defaults to :func:`default_geometry`).
    """

    def __init__(
        self, spec: DriveSpec | None = None, geometry: DiskGeometry | None = None
    ) -> None:
        self.spec = spec or DriveSpec()
        self.geometry = geometry or default_geometry()
        self._mean_pos: float | None = None
        # (sectors, spt) -> transfer time.  Deterministic in the spec, and
        # the per-access service models re-derive it for the same handful
        # of block-size/zone combinations all sweep long.
        self._xfer_cache: dict[tuple[int, int], float] = {}

    # -- seek ------------------------------------------------------------
    def seek_time(self, distance) -> np.ndarray:
        """Seek time for cylinder distance(s); 0 for distance 0."""
        d = np.asarray(distance, dtype=np.float64)
        s = self.spec
        t = s.seek_base_s + s.seek_sqrt_s * np.sqrt(d) + s.seek_linear_s * d
        return np.where(d <= 0, 0.0, t)

    def sample_local_seek(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Seek times for random moves within a file's local extent.

        Inlines :meth:`seek_time` without its ``d <= 0`` guard — the draw
        is always >= 1 cylinder, so the values are identical.
        """
        s = self.spec
        if n == 1:
            # Scalar fast path (fully-sequential streams position exactly
            # once per access): a scalar bounded draw consumes the bit
            # stream identically to size=1, math.sqrt is the same
            # correctly-rounded float64 sqrt, and the expression keeps the
            # array path's operand order, so the value is bit-identical.
            d = float(rng.integers(1, s.locality_span_cylinders + 1))
            return np.array([s.seek_base_s + s.seek_sqrt_s * math.sqrt(d) + s.seek_linear_s * d])
        d = rng.integers(1, s.locality_span_cylinders + 1, size=n)
        # In-place over the sqrt temporary; float addition is commutative
        # bit-for-bit, so the regrouping is exact.
        t = np.sqrt(d)
        t *= s.seek_sqrt_s
        t += s.seek_base_s
        t += s.seek_linear_s * d
        return t

    def sample_rotational_latency(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Uniform(0, one revolution) rotational delays."""
        if n == 1:
            # Scalar draw == size-1 draw, bit for bit (one next_double).
            return np.array([rng.random() * self.spec.rotation_period_s])
        t = rng.random(n)
        t *= self.spec.rotation_period_s
        return t

    def mean_positioning_time(self) -> float:
        """Expected seek + rotational latency for a local random access.

        Deterministic in the spec, so computed once — callers hit this on
        every background-interleaved queue, and the exact mean folds a
        ``locality_span``-element seek curve.
        """
        if self._mean_pos is None:
            span = self.spec.locality_span_cylinders
            d = np.arange(1, span + 1, dtype=np.float64)
            self._mean_pos = float(
                self.seek_time(d).mean() + self.spec.avg_rotational_latency_s
            )
        return self._mean_pos

    # -- transfer ----------------------------------------------------------
    def media_rate_bps(self, sectors_per_track) -> np.ndarray:
        """Sustained media transfer rate (bytes/s) for given track formats."""
        spt = np.asarray(sectors_per_track, dtype=np.float64)
        return spt * SECTOR_BYTES / self.spec.rotation_period_s

    def transfer_time(self, sectors, sectors_per_track) -> np.ndarray:
        """Pure media transfer time for ``sectors`` at the given format,
        including track-switch charges for crossed boundaries.

        Scalar int calls (the per-access service models) are memoised;
        the cached value is the float64 scalar the array arithmetic
        produces, so both paths agree bit-for-bit.
        """
        if type(sectors) is int and type(sectors_per_track) is int:
            key = (sectors, sectors_per_track)
            t = self._xfer_cache.get(key)
            if t is None:
                t = self._xfer_cache[key] = float(
                    self._transfer_time_arr(sectors, sectors_per_track)
                )
            return t
        return self._transfer_time_arr(sectors, sectors_per_track)

    def _transfer_time_arr(self, sectors, sectors_per_track) -> np.ndarray:
        sectors = np.asarray(sectors, dtype=np.float64)
        spt = np.asarray(sectors_per_track, dtype=np.float64)
        xfer = sectors * SECTOR_BYTES / self.media_rate_bps(spt)
        switches = np.floor_divide(np.maximum(sectors - 1, 0), spt)
        return xfer + switches * self.spec.track_switch_s

    # -- whole requests -----------------------------------------------------
    def request_time(
        self,
        sectors: int,
        sectors_per_track: int,
        positioned: bool,
        rng: np.random.Generator,
    ) -> float:
        """Service time for one request.

        ``positioned`` requests continue sequentially from the previous one
        and pay no seek or rotational latency.
        """
        t = self.spec.controller_overhead_s
        if not positioned:
            t += float(self.sample_local_seek(rng, 1)[0])
            t += float(self.sample_rotational_latency(rng, 1)[0])
        t += float(self.transfer_time(sectors, sectors_per_track))
        return t

    def expected_bandwidth(
        self, blocking_factor: int, p_sequential: float, sectors_per_track: int
    ) -> float:
        """Closed-form expected bandwidth (bytes/s) for a workload config.

        Used to sanity-check calibration against Table 6-1.
        """
        s = self.spec
        per_req = s.controller_overhead_s + float(
            self.transfer_time(blocking_factor, sectors_per_track)
        )
        per_req += (1.0 - p_sequential) * self.mean_positioning_time()
        return blocking_factor * SECTOR_BYTES / per_req
