"""Drive mechanics: seek curve, rotation, media transfer, overheads.

All times are in **seconds**.  The default :class:`DriveSpec` is calibrated
so that the synthetic-workload bandwidth grid approximates Table 6-1 of the
dissertation (0.5 ... 53 MB/s across blocking factors 8..1024 and
sequential-access probability 0/1, mean ~15 MB/s).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disk.geometry import SECTOR_BYTES, DiskGeometry, default_geometry


@dataclass(frozen=True)
class DriveSpec:
    """Mechanical and controller parameters of a drive model.

    Attributes
    ----------
    rpm:
        Spindle speed.
    seek_base_s, seek_sqrt_s, seek_linear_s:
        Seek curve ``base + sqrt_coeff*sqrt(d) + linear_coeff*d`` for a
        d-cylinder move (0 for d = 0) — the standard concave model of
        Ruemmler & Wilkes.
    head_switch_s:
        Time to activate another head within a cylinder.
    track_switch_s:
        Time charged per track boundary crossed during a transfer.
    controller_overhead_s:
        Fixed command-processing cost per request.
    locality_span_cylinders:
        Span of the extent within which a file's random in-disk layout
        scatters its sectors (random seeks are local to the allocation,
        not full-stroke).
    """

    rpm: float = 7200.0
    seek_base_s: float = 0.0006
    seek_sqrt_s: float = 0.000050
    seek_linear_s: float = 0.0000001
    head_switch_s: float = 0.0008
    track_switch_s: float = 0.0009
    controller_overhead_s: float = 0.0010
    locality_span_cylinders: int = 2000

    @property
    def rotation_period_s(self) -> float:
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency_s(self) -> float:
        return 0.5 * self.rotation_period_s


class DiskMechanics:
    """Computes service-time components from a :class:`DriveSpec`.

    Parameters
    ----------
    spec:
        Drive parameters.
    geometry:
        Zoned geometry (defaults to :func:`default_geometry`).
    """

    def __init__(
        self, spec: DriveSpec | None = None, geometry: DiskGeometry | None = None
    ) -> None:
        self.spec = spec or DriveSpec()
        self.geometry = geometry or default_geometry()

    # -- seek ------------------------------------------------------------
    def seek_time(self, distance) -> np.ndarray:
        """Seek time for cylinder distance(s); 0 for distance 0."""
        d = np.asarray(distance, dtype=np.float64)
        s = self.spec
        t = s.seek_base_s + s.seek_sqrt_s * np.sqrt(d) + s.seek_linear_s * d
        return np.where(d <= 0, 0.0, t)

    def sample_local_seek(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Seek times for random moves within a file's local extent."""
        d = rng.integers(1, self.spec.locality_span_cylinders + 1, size=n)
        return self.seek_time(d)

    def sample_rotational_latency(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Uniform(0, one revolution) rotational delays."""
        return rng.random(n) * self.spec.rotation_period_s

    def mean_positioning_time(self) -> float:
        """Expected seek + rotational latency for a local random access."""
        span = self.spec.locality_span_cylinders
        d = np.arange(1, span + 1, dtype=np.float64)
        return float(self.seek_time(d).mean() + self.spec.avg_rotational_latency_s)

    # -- transfer ----------------------------------------------------------
    def media_rate_bps(self, sectors_per_track) -> np.ndarray:
        """Sustained media transfer rate (bytes/s) for given track formats."""
        spt = np.asarray(sectors_per_track, dtype=np.float64)
        return spt * SECTOR_BYTES / self.spec.rotation_period_s

    def transfer_time(self, sectors, sectors_per_track) -> np.ndarray:
        """Pure media transfer time for ``sectors`` at the given format,
        including track-switch charges for crossed boundaries."""
        sectors = np.asarray(sectors, dtype=np.float64)
        spt = np.asarray(sectors_per_track, dtype=np.float64)
        xfer = sectors * SECTOR_BYTES / self.media_rate_bps(spt)
        switches = np.floor_divide(np.maximum(sectors - 1, 0), spt)
        return xfer + switches * self.spec.track_switch_s

    # -- whole requests -----------------------------------------------------
    def request_time(
        self,
        sectors: int,
        sectors_per_track: int,
        positioned: bool,
        rng: np.random.Generator,
    ) -> float:
        """Service time for one request.

        ``positioned`` requests continue sequentially from the previous one
        and pay no seek or rotational latency.
        """
        t = self.spec.controller_overhead_s
        if not positioned:
            t += float(self.sample_local_seek(rng, 1)[0])
            t += float(self.sample_rotational_latency(rng, 1)[0])
        t += float(self.transfer_time(sectors, sectors_per_track))
        return t

    def expected_bandwidth(
        self, blocking_factor: int, p_sequential: float, sectors_per_track: int
    ) -> float:
        """Closed-form expected bandwidth (bytes/s) for a workload config.

        Used to sanity-check calibration against Table 6-1.
        """
        s = self.spec
        per_req = s.controller_overhead_s + float(
            self.transfer_time(blocking_factor, sectors_per_track)
        )
        per_req += (1.0 - p_sequential) * self.mean_positioning_time()
        return blocking_factor * SECTOR_BYTES / per_req
