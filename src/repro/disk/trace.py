"""Disk request traces: record, save, load and replay.

The dissertation's admission-control and multi-user studies stalled on the
lack of "good enough workload model or traces" (§5.4, §7.3).  This module
supplies the machinery: a simple line format compatible with
DiskSim-style ASCII traces, a synthesiser that converts the workload
models into trace files, and a replayer that drives an event-driven
:class:`~repro.disk.drive.DiskDrive` from a trace and reports per-request
response times.

Trace line format (whitespace-separated)::

    <arrival-time-s> <lba> <sectors> <R|W>
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.disk.drive import DiskDrive, DiskRequest
from repro.disk.mechanics import DiskMechanics
from repro.disk.workload import InDiskLayout, SyntheticWorkload
from repro.sim import Environment


@dataclass(frozen=True)
class TraceRecord:
    """One traced request."""

    arrival_s: float
    lba: int
    sectors: int
    is_write: bool = False

    def line(self) -> str:
        return f"{self.arrival_s:.6f} {self.lba} {self.sectors} {'W' if self.is_write else 'R'}"


def parse_trace(text: str | io.TextIOBase) -> list[TraceRecord]:
    """Parse a trace from a string or text file object.

    Blank lines and ``#`` comments are ignored.

    Raises
    ------
    ValueError
        On malformed lines or non-monotone arrival times.
    """
    if isinstance(text, str):
        lines = text.splitlines()
    else:
        lines = text.read().splitlines()
    records: list[TraceRecord] = []
    last = -1.0
    for no, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 4 or parts[3] not in ("R", "W"):
            raise ValueError(f"line {no}: malformed trace line {raw!r}")
        t, lba, sectors = float(parts[0]), int(parts[1]), int(parts[2])
        if sectors <= 0 or lba < 0 or t < 0:
            raise ValueError(f"line {no}: negative/zero field in {raw!r}")
        if t < last:
            raise ValueError(f"line {no}: arrival times must be non-decreasing")
        last = t
        records.append(TraceRecord(t, lba, sectors, parts[3] == "W"))
    return records


def dump_trace(records: Iterable[TraceRecord]) -> str:
    """Serialise records to the line format (with a header comment)."""
    out = ["# repro disk trace: arrival_s lba sectors R|W"]
    out.extend(r.line() for r in records)
    return "\n".join(out) + "\n"


def synthesize_trace(
    layout: InDiskLayout,
    total_sectors: int,
    arrival_rate_hz: float,
    rng: np.random.Generator,
    extent_sectors: int = 10_000_000,
) -> list[TraceRecord]:
    """Turn the §6.2.5 workload model into a trace (Poisson arrivals)."""
    if arrival_rate_hz <= 0:
        raise ValueError("arrival rate must be positive")
    wl = SyntheticWorkload(layout, 0, extent_sectors, rng)
    records = []
    t = 0.0
    for pat in wl.requests(total_sectors):
        t += float(rng.exponential(1.0 / arrival_rate_hz))
        records.append(TraceRecord(t, pat.lba, pat.sectors))
    return records


@dataclass
class ReplayReport:
    """Replay outcome."""

    response_times_s: np.ndarray
    makespan_s: float
    served_bytes: int

    @property
    def mean_response_s(self) -> float:
        return float(self.response_times_s.mean()) if self.response_times_s.size else 0.0

    @property
    def p99_response_s(self) -> float:
        if not self.response_times_s.size:
            return 0.0
        return float(np.percentile(self.response_times_s, 99))


def replay_trace(
    records: list[TraceRecord],
    mechanics: DiskMechanics | None = None,
    rng: np.random.Generator | None = None,
    scheduler: str = "fcfs",
) -> ReplayReport:
    """Drive an event-driven disk from the trace; report response times."""
    mechanics = mechanics or DiskMechanics()
    rng = rng or np.random.default_rng(0)
    env = Environment()
    drive = DiskDrive(env, mechanics, rng, scheduler=scheduler)
    requests: list[DiskRequest] = []

    def injector(env):
        now = 0.0
        for rec in records:
            if rec.arrival_s > now:
                yield env.timeout(rec.arrival_s - now)
                now = rec.arrival_s
            requests.append(drive.read(rec.lba, rec.sectors, tag=rec))

    env.process(injector(env))
    env.run()
    resp = np.array(
        [req.done.value - req.tag.arrival_s for req in requests if req.done.value is not None]
    )
    return ReplayReport(
        response_times_s=resp,
        makespan_s=env.now,
        served_bytes=drive.served_bytes,
    )
