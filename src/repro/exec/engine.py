"""The execution engine: scheduled, parallel, memoized experiment jobs.

An :class:`Executor` takes a batch of :class:`~repro.exec.job.Job` cells
and returns their trial-result lists in submission order.  Under the
hood it:

* serves cache hits from a :class:`~repro.exec.store.ResultStore`
  (content-addressed, so interrupted or repeated sweeps resume for free);
* fans cache misses out over a ``ProcessPoolExecutor`` when ``jobs > 1``
  — every ``(plan, scheme)`` cell owns its RNG streams
  (``RngHub(plan.seed)``) and its own simulated cluster, so cells are
  embarrassingly parallel;
* runs everything through the *same* canonical payload/codec path
  (:func:`repro.exec.job.execute_payload`) whether pooled, sequential or
  cached, so parallel execution is bit-identical to sequential by
  construction;
* retries a crashed worker job once, in-process, and reports it — a
  failure is never silently dropped;
* keeps per-job wall-clock accounting and paints a live progress/ETA
  line when asked to.

Traced runs (``tracer.enabled``) force the sequential in-process path and
bypass the cache: the trace's single global DES timeline only exists when
one process advances it, and a cache hit would silence the spans a trace
exists to record.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.exec.job import (
    Job,
    execute_payload,
    results_from_json,
    results_from_jsonable,
)
from repro.exec.store import ResultStore


class JobFailure(RuntimeError):
    """A job failed in a worker *and* in its in-process retry."""


def _worker(payload_json: str) -> tuple[str, float]:
    """Pool entry point: run one payload, return (results JSON, wall s).

    Module-level so it pickles under both fork and spawn start methods.
    The wall time is measurement metadata only — it never enters the
    payload, the results or the cache entry (SIM008).
    """
    t0 = time.perf_counter()
    results_json = execute_payload(payload_json)
    return results_json, time.perf_counter() - t0


def _mp_context():
    """Fork where available (fast, inherits the loaded numpy), else spawn.

    Results cannot differ between start methods: workers rebuild
    everything from the canonical payload.
    """
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


@dataclass
class ExecStats:
    """What one executor did: cache traffic, work, retries, wall clock."""

    submitted: int = 0
    hits: int = 0
    ran: int = 0
    retried: int = 0
    deduped: int = 0
    wall_s: float = 0.0
    #: (job label, wall seconds, served-from-cache) per completed job, in
    #: completion order — the per-job accounting ledger.
    job_walls: list = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.submitted if self.submitted else 0.0

    def summary(self) -> str:
        return (
            f"{self.submitted} jobs: {self.hits} cached, {self.ran} ran"
            + (f", {self.retried} retried" if self.retried else "")
            + (f", {self.deduped} deduped" if self.deduped else "")
            + f" ({self.wall_s:.1f}s)"
        )


class _Progress:
    """A single live ``\\r``-rewritten progress/ETA line on stderr."""

    def __init__(self, total: int, enabled: bool, stream=None) -> None:
        self.total = total
        self.enabled = enabled and total > 0
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self.hits = 0
        self._t0 = time.perf_counter()

    def tick(self, cached: bool) -> None:
        self.done += 1
        self.hits += int(cached)
        if not self.enabled:
            return
        elapsed = time.perf_counter() - self._t0
        remaining = self.total - self.done
        eta = elapsed / self.done * remaining if self.done else 0.0
        self.stream.write(
            f"\r[exec] {self.done}/{self.total} jobs"
            f" ({self.hits} cached), {elapsed:.1f}s elapsed"
            f", eta {eta:.1f}s "
        )
        self.stream.flush()

    def close(self) -> None:
        if self.enabled and self.done:
            self.stream.write("\n")
            self.stream.flush()


class Executor:
    """Run job batches: cache-aware, optionally process-parallel.

    Parameters
    ----------
    jobs:
        Worker-process count; ``1`` (the default) executes in-process.
    store:
        Result cache; ``None`` disables caching entirely.
    retries:
        In-process retries for a job that failed in a worker (default 1).
    progress:
        Paint the live progress/ETA line on ``stderr``.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        retries: int = 1,
        progress: bool = False,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.store = store
        self.retries = max(0, int(retries))
        self.progress = bool(progress)
        self.stats = ExecStats()

    # -- public API -----------------------------------------------------------
    def run_jobs(self, jobs: Sequence[Job], tracer=None) -> list[list]:
        """Execute ``jobs``; return each job's ``AccessResult`` list.

        Output order is submission order, regardless of completion order,
        cache hits or retries — callers can zip results against inputs.
        """
        from repro.obs.tracer import current_tracer

        jobs = list(jobs)
        tracer = tracer if tracer is not None else current_tracer()
        self.stats.submitted += len(jobs)
        t_start = time.perf_counter()
        try:
            if tracer.enabled:
                return self._run_traced(jobs, tracer)
            return self._run_untraced(jobs)
        finally:
            self.stats.wall_s += time.perf_counter() - t_start

    # -- traced path ----------------------------------------------------------
    def _run_traced(self, jobs: list[Job], tracer) -> list[list]:
        """Sequential, uncached, with one ``exec.job`` span per job.

        Trial jobs (``run_scheme``) advance ``tracer.offset`` past each
        run, so the span covers exactly the stretch of the global DES
        timeline the job occupied; other job kinds run inline through
        their own ``run_traced`` hook.
        """
        out = []
        for job in jobs:
            t0 = tracer.offset
            results = job.run_traced(tracer)
            t1 = tracer.offset
            saved = tracer.offset
            tracer.offset = 0.0
            try:
                tracer.span(
                    f"exec.job:{job.scheme_name}",
                    "exec",
                    t0,
                    max(t0, t1),
                    track="exec",
                    args=job.span_args(),
                )
            finally:
                tracer.offset = saved
            self.stats.ran += 1
            self.stats.job_walls.append((job.label, 0.0, False))
            out.append(results)
        return out

    # -- untraced path --------------------------------------------------------
    def _run_untraced(self, jobs: list[Job]) -> list[list]:
        out: list = [None] * len(jobs)
        progress = _Progress(len(jobs), self.progress)
        try:
            keys = [job.key() for job in jobs]
            # Cache pass: serve hits, group misses by key so duplicate
            # cells in one batch run exactly once.
            miss_indices: dict[str, list[int]] = {}
            for i, (job, key) in enumerate(zip(jobs, keys)):
                entry = self.store.get(key) if self.store is not None else None
                if entry is not None:
                    out[i] = results_from_jsonable(entry["results"])
                    self.stats.hits += 1
                    progress.tick(cached=True)
                else:
                    miss_indices.setdefault(key, []).append(i)
            order = sorted(miss_indices, key=lambda k: miss_indices[k][0])
            if self.jobs > 1 and len(order) > 1:
                produced = self._run_pool(jobs, keys, miss_indices, order, progress)
            else:
                produced = {}
                for key in order:
                    produced[key] = self._run_local(jobs[miss_indices[key][0]], key)
                    progress.tick(cached=False)
            for key, results_json in produced.items():
                indices = miss_indices[key]
                self.stats.deduped += len(indices) - 1
                for _ in indices[1:]:  # duplicate cells ran once
                    progress.tick(cached=True)
                for i in indices:
                    out[i] = results_from_json(results_json)
        finally:
            progress.close()
        return out

    def _run_local(self, job: Job, key: str) -> str:
        """Execute one job in-process; persist and account it."""
        t0 = time.perf_counter()
        results_json = execute_payload(job.payload_json())
        wall_s = time.perf_counter() - t0
        self._record(job, key, results_json, wall_s)
        return results_json

    def _record(self, job: Job, key: str, results_json: str, wall_s: float) -> None:
        if self.store is not None:
            self.store.put(key, job.scheme_name, job.payload(), json.loads(results_json))
        self.stats.ran += 1
        self.stats.job_walls.append((job.label, wall_s, False))

    def _run_pool(
        self,
        jobs: list[Job],
        keys: list[str],
        miss_indices: dict[str, list[int]],
        order: list[str],
        progress: _Progress,
    ) -> dict[str, str]:
        """Fan misses over a worker pool; retry failures in-process.

        A worker failure (an exception in the job, or the pool dying
        under it) is reported on stderr and the job re-runs in this
        process — same payload, same codec, so a successful retry is
        indistinguishable from a first-try success.  A job that fails
        its retry raises :class:`JobFailure` naming the job.
        """
        produced: dict[str, str] = {}
        failed: list[tuple[str, BaseException]] = []
        ctx = _mp_context()
        workers = min(self.jobs, len(order))
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            futures = {
                key: pool.submit(_worker, jobs[miss_indices[key][0]].payload_json())
                for key in order
            }
            for key in order:
                job = jobs[miss_indices[key][0]]
                try:
                    results_json, wall_s = futures[key].result()
                except BaseException as exc:  # job error or broken pool
                    failed.append((key, exc))
                    continue
                self._record(job, key, results_json, wall_s)
                produced[key] = results_json
                progress.tick(cached=False)
        for key, exc in failed:
            job = jobs[miss_indices[key][0]]
            print(
                f"[exec] job {job.label} failed in worker"
                f" ({type(exc).__name__}: {exc}); retrying in-process",
                file=sys.stderr,
            )
            if self.retries <= 0:
                raise JobFailure(f"job {job.label} (key {key}) failed") from exc
            try:
                produced[key] = self._run_local(job, key)
            except BaseException as retry_exc:
                raise JobFailure(
                    f"job {job.label} (key {key}) failed in a worker and "
                    f"again on in-process retry"
                ) from retry_exc
            self.stats.retried += 1
            progress.tick(cached=False)
        return produced


# -- ambient executor ---------------------------------------------------------
# Like the ambient tracer: the experiment registry exposes zero-argument
# callables, so the CLI installs the executor ambiently and `run_point` /
# `sweep` pick it up as their default.
_ambient = threading.local()

#: The fallback executor: sequential, uncached — exactly the pre-engine
#: behaviour, so code that never installs an executor is unaffected.
_DEFAULT = Executor()


def current_executor() -> Executor:
    """The innermost executor installed with :func:`use_executor`."""
    stack = getattr(_ambient, "stack", None)
    return stack[-1] if stack else _DEFAULT


@contextmanager
def use_executor(executor: Executor) -> Iterator[Executor]:
    """Install ``executor`` as the ambient default within the block."""
    stack = getattr(_ambient, "stack", None)
    if stack is None:
        stack = _ambient.stack = []
    stack.append(executor)
    try:
        yield executor
    finally:
        stack.pop()
