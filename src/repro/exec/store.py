"""Content-addressed result store (``.repro-cache/``).

Each entry is one JSON file named by the job's content hash, holding the
canonical payload next to the canonical results, so an entry is
self-describing: ``python -m repro.exec stats`` can say what is cached
without any side index, and GC can tell live entries from ones written
under an older code-version salt.

Entries contain **only deterministic content** (payload + results — no
timestamps, no hostnames, no PIDs; SIM008 enforces this in code): two
machines that run the same job write byte-identical cache files.  Writes
go through a temp file + :func:`os.replace`, so concurrent writers of the
same key race benignly — last writer wins with identical bytes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.exec.job import CODE_SALT, canonical_json

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Entry-format version; bump on incompatible layout changes.
STORE_VERSION = 1


def default_cache_dir() -> str:
    """The cache directory, honouring the ``REPRO_CACHE_DIR`` env knob."""
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


@dataclass(frozen=True)
class StoreStats:
    """Aggregate view of a cache directory."""

    entries: int
    bytes: int
    stale: int  #: entries written under a different code-version salt
    by_scheme: dict

    def render(self) -> str:
        lines = [
            f"entries: {self.entries}",
            f"bytes:   {self.bytes:,d}",
            f"stale:   {self.stale} (salt != {CODE_SALT!r})",
        ]
        if self.by_scheme:
            lines.append("by scheme:")
            width = max(len(k) for k in self.by_scheme)
            for name in sorted(self.by_scheme):
                lines.append(f"  {name:<{width}}  {self.by_scheme[name]}")
        return "\n".join(lines)


class ResultStore:
    """Persist serialized trial-result lists keyed by job content hash."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root if root is not None else default_cache_dir())

    def path_for(self, key: str) -> Path:
        """Entry path: two-level fan-out keeps directories small."""
        return self.root / key[:2] / f"{key}.json"

    # -- read ----------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """The decoded entry for ``key``, or ``None``.

        Corrupt, truncated, foreign-version or stale-salt files are
        treated as misses — a damaged cache degrades to recomputation,
        never to a crash or a wrong result.
        """
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("version") != STORE_VERSION or entry.get("key") != key:
            return None
        if entry.get("salt") != CODE_SALT:
            return None
        if "results" not in entry:
            return None
        return entry

    # -- write ---------------------------------------------------------------
    def put(self, key: str, scheme: str, payload: dict, results: list) -> Path:
        """Persist one entry; returns its path.

        ``results`` is the already-jsonable result list (the decoded form
        of :func:`repro.exec.job.results_to_json` output).
        """
        entry = {
            "version": STORE_VERSION,
            "key": key,
            "salt": CODE_SALT,
            "scheme": scheme,
            "payload": payload,
            "results": results,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(canonical_json(entry) + "\n", encoding="utf-8")
        os.replace(tmp, path)
        return path

    # -- maintenance ----------------------------------------------------------
    def _entry_files(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            if path.is_file():
                yield path

    def stats(self) -> StoreStats:
        """Scan the cache directory; never raises on damaged entries."""
        entries = 0
        nbytes = 0
        stale = 0
        by_scheme: dict[str, int] = {}
        for path in self._entry_files():
            entries += 1
            nbytes += path.stat().st_size
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                stale += 1
                continue
            if not isinstance(entry, dict) or entry.get("salt") != CODE_SALT:
                stale += 1
                continue
            scheme = str(entry.get("scheme", "?"))
            by_scheme[scheme] = by_scheme.get(scheme, 0) + 1
        return StoreStats(entries=entries, bytes=nbytes, stale=stale,
                          by_scheme=by_scheme)

    def gc(self, all_entries: bool = False) -> int:
        """Remove stale entries (or every entry); returns the count removed.

        *Stale* means unreadable, or written under a code-version salt
        other than the current :data:`repro.exec.job.CODE_SALT`.
        """
        removed = 0
        for path in list(self._entry_files()):
            drop = all_entries
            if not drop:
                try:
                    entry = json.loads(path.read_text(encoding="utf-8"))
                    drop = (
                        not isinstance(entry, dict)
                        or entry.get("version") != STORE_VERSION
                        or entry.get("salt") != CODE_SALT
                    )
                except (OSError, json.JSONDecodeError):
                    drop = True
            if drop:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        # Drop now-empty fan-out directories so `gc --all` leaves no husk.
        if self.root.is_dir():
            for sub in sorted(self.root.iterdir()):
                if sub.is_dir():
                    try:
                        sub.rmdir()
                    except OSError:
                        pass
        return removed
