"""The job model: one ``(plan, scheme)`` cell as canonical, hashable data.

A :class:`Job` is the unit the execution engine schedules, caches and
ships across process boundaries.  Its payload is a *canonical JSON
encoding* of the full :class:`~repro.experiments.harness.TrialPlan`
(including the nested :class:`~repro.core.access.AccessConfig`, in-disk
layout, fault plan/model) plus the scheme name; its cache key is a
:func:`repro.sim.rng.stable_digest` of that payload folded with the run's
env knobs (``REPRO_TRIALS`` / ``REPRO_DATA_MB``) and a code-version salt.

Determinism contract: a payload contains *only* values that reproduce the
simulation — no wall-clock times, no PIDs, no per-process state (enforced
by lint rule SIM008).  Equal payloads therefore run bit-identically in
any process, which is what makes the result cache and the worker pool
safe.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

from repro.core.access import AccessConfig, AccessResult
from repro.disk.workload import InDiskLayout
from repro.experiments import config as C
from repro.experiments.harness import TrialPlan
from repro.faults.model import FaultModel
from repro.faults.plan import FaultPlan
from repro.sim.rng import stable_digest

#: Version salt folded into every cache key.  Bump this whenever a change
#: alters simulation *results* (not just performance), so stale cache
#: entries can never be served for new semantics; ``python -m repro.exec gc``
#: sweeps entries written under older salts.
CODE_SALT = "exec-v1"


def canonical_json(obj) -> str:
    """The one JSON rendering used for payloads, cache entries and keys.

    Sorted keys, no whitespace — byte-identical for equal values, so
    string equality *is* value equality for anything encoded with it.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# TrialPlan <-> canonical dict

#: TrialPlan fields needing structured encoding; every other field must be
#: a plain scalar (guarded below, so adding a field to TrialPlan without
#: teaching the codec is an immediate, loud failure — not a silent cache
#: corruption).
_STRUCTURED_FIELDS = {"access", "layout", "fault_plan", "fault_model"}


def _encode_flat_dataclass(value) -> dict:
    """Scalar-field dataclasses (AccessConfig, InDiskLayout, FaultModel)."""
    out = {}
    for f in dataclasses.fields(value):
        v = getattr(value, f.name)
        if not isinstance(v, (int, float, str, bool, type(None))):
            raise TypeError(
                f"{type(value).__name__}.{f.name} is not a scalar "
                f"({type(v).__name__}); teach repro.exec.job its encoding"
            )
        out[f.name] = v
    return out


def encode_plan(plan: TrialPlan, scheme_name: str) -> dict:
    """The canonical payload dict for one job."""
    out: dict = {"scheme": str(scheme_name)}
    for f in dataclasses.fields(TrialPlan):
        v = getattr(plan, f.name)
        if f.name == "access":
            out[f.name] = _encode_flat_dataclass(v)
        elif f.name == "layout":
            out[f.name] = None if v is None else _encode_flat_dataclass(v)
        elif f.name == "fault_plan":
            out[f.name] = None if v is None else v.describe()
        elif f.name == "fault_model":
            out[f.name] = None if v is None else _encode_flat_dataclass(v)
        elif isinstance(v, (int, float, str, bool, type(None))):
            out[f.name] = v
        else:
            raise TypeError(
                f"TrialPlan.{f.name} is not a scalar ({type(v).__name__}); "
                "teach repro.exec.job its encoding"
            )
    return out


def decode_plan(payload: dict) -> tuple[TrialPlan, str]:
    """Rebuild ``(plan, scheme_name)`` from :func:`encode_plan` output."""
    data = dict(payload)
    scheme_name = str(data.pop("scheme"))
    known = {f.name for f in dataclasses.fields(TrialPlan)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown TrialPlan fields in payload: {sorted(unknown)}")
    kwargs: dict = {}
    for name, value in data.items():
        if name == "access":
            kwargs[name] = AccessConfig(**value)
        elif name == "layout":
            kwargs[name] = None if value is None else InDiskLayout(**value)
        elif name == "fault_plan":
            kwargs[name] = None if value is None else FaultPlan.from_scenario(value)
        elif name == "fault_model":
            kwargs[name] = None if value is None else FaultModel(**value)
        else:
            kwargs[name] = value
    return TrialPlan(**kwargs), scheme_name


# ---------------------------------------------------------------------------
# results <-> canonical JSON

def results_to_json(results: list[AccessResult]) -> str:
    """Canonical JSON of a trial-result list (the byte-identity currency)."""
    return canonical_json([r.to_jsonable() for r in results])


def results_from_json(text: str):
    """Inverse of :func:`results_to_json` (kind-dispatching, see below)."""
    return results_from_jsonable(json.loads(text))


def results_from_jsonable(data):
    """Decode an already-parsed result value (a cache entry's ``results``).

    Trial jobs produce a *list* of access results; other job kinds tag
    their result dict with ``kind`` and decode through their own codec
    (currently ``serve`` -> :class:`repro.serve.slo.ServeReport`).
    """
    if isinstance(data, dict):
        kind = data.get("kind")
        if kind == "serve":
            from repro.serve.slo import ServeReport

            return ServeReport.from_jsonable(data)
        raise ValueError(f"unknown result kind {kind!r}")
    return [AccessResult.from_jsonable(d) for d in data]


# ---------------------------------------------------------------------------
# the job itself

@dataclass(frozen=True)
class Job:
    """One schedulable cell: all trials of ``scheme_name`` under ``plan``."""

    plan: TrialPlan
    scheme_name: str

    def payload(self) -> dict:
        return encode_plan(self.plan, self.scheme_name)

    def payload_json(self) -> str:
        return canonical_json(self.payload())

    def key(self) -> str:
        """Content hash addressing this job's results in the store.

        Folds the code-version salt, the resolved env knobs and the
        canonical payload — equal keys mean bit-identical results.
        """
        return stable_digest(
            CODE_SALT, C.trials(), C.data_mb(), self.payload_json()
        )

    @property
    def label(self) -> str:
        """Short human label for progress lines and failure reports."""
        return f"{self.scheme_name}/{self.plan.mode}×{self.plan.trials}"

    # -- executor hooks -------------------------------------------------------
    def run_traced(self, tracer) -> list[AccessResult]:
        """Traced execution: sequential, on the shared DES timeline."""
        from repro.experiments.harness import run_scheme

        return run_scheme(self.plan, self.scheme_name, tracer=tracer)

    def span_args(self) -> dict:
        """Argument dict for the executor's ``exec.job`` trace span."""
        return {
            "scheme": self.scheme_name,
            "mode": self.plan.mode,
            "trials": self.plan.trials,
        }


def execute_payload(payload_json: str) -> str:
    """Run one job from its canonical payload; return canonical results.

    This is the *entire* worker code path: decode the payload, run it,
    encode the results.  Both the in-process and the pooled executor go
    through this function, so sequential and parallel execution are the
    same code by construction — bit-identity follows from the payload's
    determinism, not from luck.

    Dispatch is on the payload's ``kind`` tag: absent means a trial job
    (:func:`repro.experiments.harness.run_scheme`); ``serve`` runs a
    :mod:`repro.serve` serving cell.
    """
    payload = json.loads(payload_json)
    kind = payload.get("kind")
    if kind == "serve":
        from repro.serve.service import execute_serve_payload

        return execute_serve_payload(payload)
    if kind is not None:
        raise ValueError(f"unknown job kind {kind!r}")
    from repro.experiments.harness import run_scheme
    from repro.obs.tracer import NULL_TRACER

    plan, scheme_name = decode_plan(payload)
    results = run_scheme(plan, scheme_name, tracer=NULL_TRACER)
    return results_to_json(results)


def execute_job(job: Job) -> list[AccessResult]:
    """In-process convenience wrapper: run ``job`` through the codec path."""
    return results_from_json(execute_payload(job.payload_json()))
