"""``repro.exec`` — parallel, cache-aware experiment execution.

The subsystem turns experiment execution into scheduled, memoized jobs:

* :class:`~repro.exec.job.Job` — one ``(plan, scheme)`` cell as canonical
  JSON with a :func:`~repro.sim.rng.stable_digest` content hash;
* :class:`~repro.exec.engine.Executor` — cache-aware, optionally
  process-parallel batch execution with retry and progress accounting;
* :class:`~repro.exec.store.ResultStore` — the content-addressed
  ``.repro-cache/`` result store (``python -m repro.exec`` for stats/GC).

``run_point``/``sweep`` in :mod:`repro.experiments.harness` submit through
the ambient executor (:func:`use_executor` / :func:`current_executor`),
and ``python -m repro.experiments -j N`` installs a pooled one.

See ``docs/parallel_execution.md`` for the job model, cache-key anatomy
and the traced-run sequential degradation.
"""

from repro.exec.engine import (
    ExecStats,
    Executor,
    JobFailure,
    current_executor,
    use_executor,
)
from repro.exec.job import (
    CODE_SALT,
    Job,
    canonical_json,
    decode_plan,
    encode_plan,
    execute_job,
    execute_payload,
    results_from_json,
    results_to_json,
)
from repro.exec.store import ResultStore, StoreStats, default_cache_dir

__all__ = [
    "CODE_SALT",
    "ExecStats",
    "Executor",
    "Job",
    "JobFailure",
    "ResultStore",
    "StoreStats",
    "canonical_json",
    "current_executor",
    "decode_plan",
    "default_cache_dir",
    "encode_plan",
    "execute_job",
    "execute_payload",
    "results_from_json",
    "results_to_json",
    "use_executor",
]
