"""``python -m repro.exec`` — inspect and maintain the result cache.

Subcommands::

    python -m repro.exec stats             # entry/byte/scheme/stale counts
    python -m repro.exec gc                # drop stale (old-salt) entries
    python -m repro.exec gc --all          # drop everything

Use ``--cache-dir`` (or the ``REPRO_CACHE_DIR`` env knob) to point at a
non-default cache location.
"""

from __future__ import annotations

import argparse
import sys

from repro.exec.job import CODE_SALT
from repro.exec.store import ResultStore, default_cache_dir


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro.exec",
        description="Inspect / garbage-collect the experiment result cache.",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=f"cache directory (default: {default_cache_dir()})",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("stats", help="entry, byte, per-scheme and stale counts")
    gc = sub.add_parser("gc", help="remove stale entries (different code salt)")
    gc.add_argument(
        "--all", action="store_true", help="remove every entry, not just stale ones"
    )
    args = parser.parse_args(argv)

    store = ResultStore(args.cache_dir)
    if args.command == "stats":
        print(f"cache: {store.root}", file=out)
        print(f"salt:  {CODE_SALT}", file=out)
        print(store.stats().render(), file=out)
        return 0
    if args.command == "gc":
        removed = store.gc(all_entries=args.all)
        what = "entries" if args.all else "stale entries"
        print(f"removed {removed} {what} from {store.root}", file=out)
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
