"""``python -m repro.exec`` dispatches to the cache-maintenance CLI."""

from repro.exec.cli import main

raise SystemExit(main())
