"""repro — a full reproduction of RobuSTore (Xia, UCSD 2006 / MSST'06).

Subpackages
-----------
``repro.sim``
    Generator-based discrete-event simulation kernel.
``repro.coding``
    Erasure codes: LT (with the dissertation's improvements), Reed-Solomon,
    parity, replication, Tornado, Raptor, plus closed-form analysis.
``repro.disk``
    DiskSim-like block-level hard-drive model and workload generators.
``repro.net``
    Fixed-RTT network links.
``repro.cluster``
    Filers, filesystem caches, storage servers, metadata, admission control.
``repro.core``
    The four storage schemes (RAID-0, RRAID-S, RRAID-A, RobuSTore) and the
    client-facing file API.
``repro.metrics``
    Bandwidth / latency-variation / I/O-overhead metrics.
``repro.experiments``
    Harness regenerating every table and figure of the evaluation chapter.
``repro.obs``
    Event tracing: spans/counters on the simulated clock, Chrome trace
    export, aggregated trace reports.
``repro.lint``
    Simulator-aware static analysis (rules SIM001-SIM006) enforcing the
    determinism conventions; the runtime complement is the DES causality
    sanitizer in ``repro.sim`` (``REPRO_SANITIZE=1``).
"""

__version__ = "1.0.0"
