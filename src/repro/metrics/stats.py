"""Aggregation of per-access results into the paper's three metrics.

§6.2.3: *variation of access latency* (standard deviation over the trial
set), *access bandwidth* (data size / latency, averaged) and *I/O overhead*
((network bytes - data bytes) / data bytes, averaged).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.access import MB, AccessResult


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate metrics over a set of access trials."""

    n_trials: int
    bandwidth_mbps: float
    bandwidth_std_mbps: float
    latency_mean_s: float
    latency_std_s: float
    io_overhead: float
    reception_overhead: float | None = None
    #: Trials whose access never completed (infinite latency) — excluded
    #: from the means above but reported explicitly rather than silently
    #: folded into an ``io_overhead=nan``.
    failed_trials: int = 0

    @property
    def latency_cv(self) -> float:
        """Coefficient of variation: std / mean latency."""
        return self.latency_std_s / self.latency_mean_s if self.latency_mean_s else 0.0

    def row(self) -> dict:
        out = {
            "trials": self.n_trials,
            "failed": self.failed_trials,
            "bw_mbps": round(self.bandwidth_mbps, 2),
            "bw_std_mbps": round(self.bandwidth_std_mbps, 2),
            "lat_s": round(self.latency_mean_s, 3),
            "lat_std_s": round(self.latency_std_s, 3),
            "lat_cv": round(self.latency_cv, 3),
            "io_overhead": round(self.io_overhead, 3),
        }
        if self.reception_overhead is not None:
            out["reception_overhead"] = round(self.reception_overhead, 3)
        return out

    def to_jsonable(self) -> dict:
        """Lossless JSON form (field-for-field; floats survive exactly)."""
        from dataclasses import fields

        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_jsonable(cls, data: dict) -> "MetricSummary":
        """Rebuild a summary from :meth:`to_jsonable` output."""
        from dataclasses import fields

        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown MetricSummary fields: {sorted(unknown)}")
        return cls(**data)


# ---------------------------------------------------------------------------
# percentile helpers (exact and histogram-bucketed)

#: The serving tail percentiles reported throughout :mod:`repro.serve`.
TAIL_PERCENTILES = (50.0, 99.0, 99.9)


def percentile_exact(values, q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Matches ``numpy.percentile``'s default (``linear``) method, computed
    directly on a sorted copy so the definition is explicit rather than
    delegated: with ``n`` sorted samples, rank ``r = q/100 * (n-1)`` and
    the result interpolates between ``floor(r)`` and ``ceil(r)``.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValueError("percentile of an empty sample")
    rank = q / 100.0 * (arr.size - 1)
    lo = int(np.floor(rank))
    hi = int(np.ceil(rank))
    frac = rank - lo
    return float(arr[lo] * (1.0 - frac) + arr[hi] * frac)


def percentiles_exact(values, qs=TAIL_PERCENTILES) -> dict[float, float]:
    """``{q: percentile_exact(values, q)}`` for every ``q`` in ``qs``."""
    return {float(q): percentile_exact(values, q) for q in qs}


class FixedBinHistogram:
    """Streaming percentile estimation in O(bins) memory.

    Log-spaced fixed bins over ``[lo, hi]``: adding a sample costs one
    ``searchsorted``, and a million samples hold the same memory as ten.
    :meth:`percentile` returns the *upper edge* of the bin where the
    cumulative count crosses the rank — a deterministic, conservative
    (never under-reporting) estimate whose relative error is bounded by
    the bin width (``(hi/lo)**(1/bins) - 1``, ~1.7 % at the defaults).

    Samples below ``lo`` clamp into the first bin; samples above ``hi``
    land in a dedicated overflow bin whose "edge" is ``inf`` —
    a tail percentile inside the overflow is reported as ``inf`` rather
    than silently truncated to ``hi``.
    """

    def __init__(self, lo: float = 1e-3, hi: float = 1e4, bins: int = 800) -> None:
        if not (0 < lo < hi):
            raise ValueError("need 0 < lo < hi")
        if bins < 1:
            raise ValueError("need at least one bin")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = int(bins)
        #: Bin upper edges, log-spaced; one extra overflow bin at +inf.
        self.edges = np.concatenate(
            [np.geomspace(lo, hi, bins + 1)[1:], [np.inf]]
        )
        self.counts = np.zeros(self.bins + 1, dtype=np.int64)
        self.n = 0

    def add(self, value: float) -> None:
        self.add_many([value])

    def add_many(self, values) -> None:
        """Bin a batch of samples (vectorised)."""
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        if not np.isfinite(arr).all():
            raise ValueError("histogram samples must be finite")
        idx = np.searchsorted(self.edges, arr, side="left")
        self.counts += np.bincount(idx, minlength=self.counts.size)
        self.n += arr.size

    def percentile(self, q: float) -> float:
        """Upper edge of the bin holding the ``q``-th percentile sample."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.n == 0:
            raise ValueError("percentile of an empty histogram")
        # Rank of the order statistic numpy's `lower` method would pick.
        rank = int(np.ceil(q / 100.0 * self.n))
        cum = np.cumsum(self.counts)
        idx = int(np.searchsorted(cum, max(1, rank), side="left"))
        return float(self.edges[idx])

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def p999(self) -> float:
        return self.percentile(99.9)

    def to_jsonable(self) -> dict:
        """Lossless JSON form (bin parameters + non-zero counts, sparse)."""
        nz = np.nonzero(self.counts)[0]
        return {
            "lo": self.lo,
            "hi": self.hi,
            "bins": self.bins,
            "n": int(self.n),
            "counts": {int(i): int(self.counts[i]) for i in nz},
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "FixedBinHistogram":
        hist = cls(lo=data["lo"], hi=data["hi"], bins=data["bins"])
        for i, c in data["counts"].items():
            hist.counts[int(i)] = int(c)
        hist.n = int(data["n"])
        return hist


def summarize(results: list[AccessResult]) -> MetricSummary:
    """Reduce access trials to the paper's metrics.

    Accesses that never completed (infinite latency — e.g. insufficient
    redundancy) are excluded from latency/bandwidth means but still noted
    via the trial count.
    """
    if not results:
        raise ValueError("no results to summarise")
    lat = np.array([r.latency_s for r in results])
    finite = np.isfinite(lat)
    if not finite.any():
        return MetricSummary(
            n_trials=len(results),
            bandwidth_mbps=0.0,
            bandwidth_std_mbps=0.0,
            latency_mean_s=float("inf"),
            latency_std_s=float("inf"),
            io_overhead=float("nan"),
            failed_trials=len(results),
        )
    ok = [r for r, f in zip(results, finite) if f]
    bw = np.array([r.bandwidth_bps for r in ok]) / MB
    lat_ok = lat[finite]
    io = np.array([r.io_overhead for r in ok])
    rec = [r.extra.get("reception_overhead") for r in ok]
    rec_vals = [x for x in rec if x is not None]
    return MetricSummary(
        n_trials=len(results),
        bandwidth_mbps=float(bw.mean()),
        bandwidth_std_mbps=float(bw.std()),
        latency_mean_s=float(lat_ok.mean()),
        latency_std_s=float(lat_ok.std()),
        io_overhead=float(io.mean()),
        reception_overhead=float(np.mean(rec_vals)) if rec_vals else None,
        failed_trials=int(len(results) - finite.sum()),
    )
