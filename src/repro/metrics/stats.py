"""Aggregation of per-access results into the paper's three metrics.

§6.2.3: *variation of access latency* (standard deviation over the trial
set), *access bandwidth* (data size / latency, averaged) and *I/O overhead*
((network bytes - data bytes) / data bytes, averaged).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.access import MB, AccessResult


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate metrics over a set of access trials."""

    n_trials: int
    bandwidth_mbps: float
    bandwidth_std_mbps: float
    latency_mean_s: float
    latency_std_s: float
    io_overhead: float
    reception_overhead: float | None = None
    #: Trials whose access never completed (infinite latency) — excluded
    #: from the means above but reported explicitly rather than silently
    #: folded into an ``io_overhead=nan``.
    failed_trials: int = 0

    @property
    def latency_cv(self) -> float:
        """Coefficient of variation: std / mean latency."""
        return self.latency_std_s / self.latency_mean_s if self.latency_mean_s else 0.0

    def row(self) -> dict:
        out = {
            "trials": self.n_trials,
            "failed": self.failed_trials,
            "bw_mbps": round(self.bandwidth_mbps, 2),
            "bw_std_mbps": round(self.bandwidth_std_mbps, 2),
            "lat_s": round(self.latency_mean_s, 3),
            "lat_std_s": round(self.latency_std_s, 3),
            "lat_cv": round(self.latency_cv, 3),
            "io_overhead": round(self.io_overhead, 3),
        }
        if self.reception_overhead is not None:
            out["reception_overhead"] = round(self.reception_overhead, 3)
        return out

    def to_jsonable(self) -> dict:
        """Lossless JSON form (field-for-field; floats survive exactly)."""
        from dataclasses import fields

        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_jsonable(cls, data: dict) -> "MetricSummary":
        """Rebuild a summary from :meth:`to_jsonable` output."""
        from dataclasses import fields

        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown MetricSummary fields: {sorted(unknown)}")
        return cls(**data)


def summarize(results: list[AccessResult]) -> MetricSummary:
    """Reduce access trials to the paper's metrics.

    Accesses that never completed (infinite latency — e.g. insufficient
    redundancy) are excluded from latency/bandwidth means but still noted
    via the trial count.
    """
    if not results:
        raise ValueError("no results to summarise")
    lat = np.array([r.latency_s for r in results])
    finite = np.isfinite(lat)
    if not finite.any():
        return MetricSummary(
            n_trials=len(results),
            bandwidth_mbps=0.0,
            bandwidth_std_mbps=0.0,
            latency_mean_s=float("inf"),
            latency_std_s=float("inf"),
            io_overhead=float("nan"),
            failed_trials=len(results),
        )
    ok = [r for r, f in zip(results, finite) if f]
    bw = np.array([r.bandwidth_bps for r in ok]) / MB
    lat_ok = lat[finite]
    io = np.array([r.io_overhead for r in ok])
    rec = [r.extra.get("reception_overhead") for r in ok]
    rec_vals = [x for x in rec if x is not None]
    return MetricSummary(
        n_trials=len(results),
        bandwidth_mbps=float(bw.mean()),
        bandwidth_std_mbps=float(bw.std()),
        latency_mean_s=float(lat_ok.mean()),
        latency_std_s=float(lat_ok.std()),
        io_overhead=float(io.mean()),
        reception_overhead=float(np.mean(rec_vals)) if rec_vals else None,
        failed_trials=int(len(results) - finite.sum()),
    )
