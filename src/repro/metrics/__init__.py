"""Metrics (§6.2.3): access bandwidth, latency variation, I/O overhead."""

from repro.metrics.stats import MetricSummary, summarize
from repro.metrics.reporting import format_series, format_table

__all__ = ["MetricSummary", "format_series", "format_table", "summarize"]
