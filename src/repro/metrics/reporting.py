"""Plain-text rendering of experiment series (the bench harness output)."""

from __future__ import annotations

from typing import Mapping, Sequence

#: ``(MetricSummary attribute, figure label)`` for every reported metric,
#: in report order — the single definition shared by
#: ``ExperimentResult.text`` and the CSV writer, so the two outputs can
#: never drift apart.
METRIC_COLUMNS = (
    ("bandwidth_mbps", "bandwidth (MB/s)"),
    ("latency_mean_s", "mean latency (s)"),
    ("latency_std_s", "latency std dev (s)"),
    ("io_overhead", "I/O overhead"),
)

#: The subset ``text()`` plots — the paper's three figure metrics (mean
#: latency is tabulated in CSV output but has no figure of its own).
TEXT_METRICS = tuple(
    (name, label) for name, label in METRIC_COLUMNS if name != "latency_mean_s"
)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: Mapping[str, Sequence[float]],
    unit: str = "",
    fmt: str = "{:10.2f}",
) -> str:
    """Render one figure's data: x values as columns, one row per scheme."""
    lines = [title, "-" * len(title)]
    header = f"{x_label:>14} | " + " | ".join(f"{x!s:>10}" for x in xs)
    lines.append(header)
    lines.append("-" * len(header))
    for name, ys in series.items():
        cells = " | ".join(
            fmt.format(y) if y == y and y != float("inf") else f"{'—':>10}" for y in ys
        )
        label = f"{name} ({unit})" if unit else name
        lines.append(f"{label:>14} | {cells}")
    return "\n".join(lines)


def format_bars(
    title: str,
    series: Mapping[str, Sequence[float]],
    xs: Sequence,
    width: int = 40,
) -> str:
    """Render each series' values as proportional ASCII bars.

    One block per series, one bar per x value — a terminal-friendly stand-in
    for the paper's figures.
    """
    finite = [
        y
        for ys in series.values()
        for y in ys
        if y == y and y not in (float("inf"), float("-inf"))
    ]
    peak = max(finite, default=0.0)
    lines = [title, "-" * len(title)]
    for name, ys in series.items():
        lines.append(f"{name}:")
        for x, y in zip(xs, ys):
            if y != y or y in (float("inf"), float("-inf")):
                bar, label = "", "—"
            else:
                bar = "█" * max(0, round(width * y / peak)) if peak > 0 else ""
                label = f"{y:.1f}"
            lines.append(f"  {x!s:>8} |{bar:<{width}} {label}")
    return "\n".join(lines)


def format_table(title: str, rows: Sequence[Mapping]) -> str:
    """Render a list of uniform dict rows as an aligned table."""
    if not rows:
        return title
    keys = list(rows[0].keys())
    lines = [title, "-" * len(title)]
    lines.append(" | ".join(f"{k:>12}" for k in keys))
    for row in rows:
        lines.append(" | ".join(f"{row.get(k, ''):>12}" for k in keys))
    return "\n".join(lines)
