"""Fixed-latency network links.

RobuSTore targets dedicated lambda networks where bandwidth is plentiful
(§6.2.2 "Virtual Filer"): the network is modelled as a link with a fixed
round-trip latency applied **per data request** (so adaptive schemes like
RRAID-A pay multiple RTTs per access), plus a byte counter for the I/O
overhead metric.  An optional client-side rate cap models the client NIC
when needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Link:
    """A client <-> storage-server link.

    Attributes
    ----------
    rtt_s:
        Round-trip latency in seconds.
    bandwidth_bps:
        Link data rate; ``inf`` models the dissertation's plentiful-lambda
        assumption.
    """

    rtt_s: float = 0.001
    bandwidth_bps: float = float("inf")
    bytes_sent: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.rtt_s < 0:
            raise ValueError("rtt must be non-negative")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")

    @property
    def one_way_s(self) -> float:
        return self.rtt_s / 2.0

    def transfer_time(self, nbytes: int) -> float:
        """Serialization delay of a payload (0 under plentiful bandwidth)."""
        if self.bandwidth_bps == float("inf"):
            return 0.0
        return nbytes / self.bandwidth_bps

    def account(self, nbytes: int) -> None:
        """Record payload bytes crossing the link (I/O-overhead metric)."""
        self.bytes_sent += int(nbytes)


class NetworkModel:
    """The set of links from one client to every storage server.

    Parameters
    ----------
    n_servers:
        Number of storage servers (filers).
    rtt_s:
        Either a single RTT applied to all links or a per-server list.
    """

    def __init__(self, n_servers: int, rtt_s: float | list[float] = 0.001) -> None:
        if n_servers < 1:
            raise ValueError("need at least one server")
        if isinstance(rtt_s, (int, float)):
            rtts = [float(rtt_s)] * n_servers
        else:
            rtts = [float(r) for r in rtt_s]
            if len(rtts) != n_servers:
                raise ValueError("one RTT per server required")
        self.links = [Link(rtt_s=r) for r in rtts]

    def __len__(self) -> int:
        return len(self.links)

    def link(self, server_id: int) -> Link:
        return self.links[server_id]

    @property
    def total_bytes_sent(self) -> int:
        return sum(link.bytes_sent for link in self.links)

    def reset_counters(self) -> None:
        for link in self.links:
            link.bytes_sent = 0
