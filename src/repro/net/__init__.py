"""Network model: fixed-RTT links with plentiful bandwidth (§6.2.2)."""

from repro.net.link import Link, NetworkModel

__all__ = ["Link", "NetworkModel"]
