"""Fault plans: validated, time-sorted schedules of fault events.

A :class:`FaultPlan` is pure data — it carries no simulator state, so the
same plan can be installed on any cluster and replayed exactly.  Plans are
built either from a declarative scenario spec (a list of small dicts, see
:meth:`FaultPlan.from_scenario`) or sampled from a seeded
:class:`repro.faults.model.FaultModel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

#: A disk stops responding; with ``duration`` it comes back by itself,
#: without one it stays dead until an explicit ``disk_recover``.
DISK_FAIL = "disk_fail"
#: A previously failed disk returns to service.
DISK_RECOVER = "disk_recover"
#: A disk serves at ``factor``-times its nominal service time for
#: ``duration`` seconds (transient degradation: vibration, firmware GC,
#: a rebuilding neighbour...).
DISK_SLOW = "disk_slow"
#: A filer crashes for ``duration`` seconds: its disks stop serving and
#: its link goes dark until the restart.
FILER_CRASH = "filer_crash"
#: The client link to one filer gains ``extra_s`` one-way latency for
#: ``duration`` seconds.
LINK_DEGRADE = "link_degrade"

KINDS = (DISK_FAIL, DISK_RECOVER, DISK_SLOW, FILER_CRASH, LINK_DEGRADE)

#: Which spec keys each kind accepts beyond ``at``/``fault``/its target.
_KIND_PARAMS = {
    DISK_FAIL: {"disk", "duration"},
    DISK_RECOVER: {"disk"},
    DISK_SLOW: {"disk", "duration", "factor"},
    FILER_CRASH: {"filer", "duration"},
    LINK_DEGRADE: {"filer", "duration", "extra_s"},
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes
    ----------
    t:
        Simulated time (seconds from access start) the fault fires.
    kind:
        One of the module-level kind constants.
    disk / filer:
        The target (exactly one is set, depending on the kind).
    duration:
        Window length for transient faults; ``None`` on a ``disk_fail``
        means permanent (until an explicit recover), and is invalid for
        the other windowed kinds.
    factor:
        Service-time multiplier for ``disk_slow`` (>= 1).
    extra_s:
        Added one-way latency for ``link_degrade`` (> 0).
    """

    t: float
    kind: str
    disk: Optional[int] = None
    filer: Optional[int] = None
    duration: Optional[float] = None
    factor: Optional[float] = None
    extra_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        if not (isinstance(self.t, (int, float)) and math.isfinite(self.t) and self.t >= 0):
            raise ValueError(f"fault time must be finite and non-negative, got {self.t!r}")
        needs_disk = self.kind in (DISK_FAIL, DISK_RECOVER, DISK_SLOW)
        if needs_disk:
            if self.disk is None or self.filer is not None:
                raise ValueError(f"{self.kind} targets a disk (got disk={self.disk}, filer={self.filer})")
            if int(self.disk) < 0:
                raise ValueError(f"disk id must be non-negative, got {self.disk}")
        else:
            if self.filer is None or self.disk is not None:
                raise ValueError(f"{self.kind} targets a filer (got disk={self.disk}, filer={self.filer})")
            if int(self.filer) < 0:
                raise ValueError(f"filer id must be non-negative, got {self.filer}")
        if self.duration is not None and not (
            math.isfinite(self.duration) and self.duration > 0
        ):
            raise ValueError(f"duration must be finite and positive, got {self.duration!r}")
        if self.kind in (DISK_SLOW, FILER_CRASH, LINK_DEGRADE) and self.duration is None:
            raise ValueError(f"{self.kind} requires a duration")
        if self.kind == DISK_SLOW:
            if self.factor is None or not math.isfinite(self.factor) or self.factor < 1.0:
                raise ValueError(f"disk_slow needs factor >= 1, got {self.factor!r}")
        elif self.factor is not None:
            raise ValueError(f"factor is only valid for {DISK_SLOW}")
        if self.kind == LINK_DEGRADE:
            if self.extra_s is None or not math.isfinite(self.extra_s) or self.extra_s <= 0:
                raise ValueError(f"link_degrade needs extra_s > 0, got {self.extra_s!r}")
        elif self.extra_s is not None:
            raise ValueError(f"extra_s is only valid for {LINK_DEGRADE}")

    @property
    def end(self) -> Optional[float]:
        """Window end for transient faults, ``None`` for open-ended ones."""
        return None if self.duration is None else self.t + self.duration

    def describe(self) -> dict:
        """Canonical JSON-able form (used by scenario round-trips/goldens)."""
        out: dict = {"at": self.t, "fault": self.kind}
        for key in ("disk", "filer", "duration", "factor", "extra_s"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


class FaultPlan:
    """An immutable, time-sorted sequence of :class:`FaultEvent`.

    Sorting is by (time, kind, target) so plans built from the same events
    in any order compare — and replay — identically.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        evts = sorted(
            events,
            key=lambda e: (e.t, e.kind, -1 if e.disk is None else e.disk,
                           -1 if e.filer is None else e.filer),
        )
        self._events: tuple[FaultEvent, ...] = tuple(evts)
        self._validate_pairing()

    def _validate_pairing(self) -> None:
        """Recovery of a disk that never failed is a spec bug — reject it."""
        down: set[int] = set()
        for ev in self._events:
            if ev.kind == DISK_FAIL:
                disk = int(ev.disk)  # type: ignore[arg-type]
                if disk in down:
                    raise ValueError(f"disk {disk} fails at t={ev.t} while already failed")
                if ev.duration is None:
                    down.add(disk)
            elif ev.kind == DISK_RECOVER:
                disk = int(ev.disk)  # type: ignore[arg-type]
                if disk not in down:
                    raise ValueError(
                        f"disk {disk} recovers at t={ev.t} without a preceding "
                        f"open-ended disk_fail"
                    )
                down.discard(disk)

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_scenario(cls, spec: Sequence[Mapping]) -> "FaultPlan":
        """Build a plan from the declarative scenario spec.

        ``spec`` is a list of dicts, each with ``at`` (seconds), ``fault``
        (a kind name) and the kind's parameters, e.g.::

            FaultPlan.from_scenario([
                {"at": 0.5, "fault": "disk_fail", "disk": 3},
                {"at": 2.0, "fault": "disk_recover", "disk": 3},
                {"at": 0.2, "fault": "disk_slow", "disk": 7,
                 "factor": 4.0, "duration": 1.5},
                {"at": 1.0, "fault": "filer_crash", "filer": 0, "duration": 0.5},
                {"at": 0.0, "fault": "link_degrade", "filer": 1,
                 "extra_s": 0.05, "duration": 2.0},
            ])

        The spec is JSON-serialisable; :meth:`describe` round-trips it.
        """
        events = []
        for i, entry in enumerate(spec):
            entry = dict(entry)
            try:
                t = float(entry.pop("at"))
                kind = str(entry.pop("fault"))
            except KeyError as exc:
                raise ValueError(f"scenario entry {i} is missing {exc}") from None
            allowed = _KIND_PARAMS.get(kind)
            if allowed is None:
                raise ValueError(f"scenario entry {i}: unknown fault kind {kind!r}")
            unknown = set(entry) - allowed
            if unknown:
                raise ValueError(
                    f"scenario entry {i} ({kind}): unexpected keys {sorted(unknown)}"
                )
            events.append(FaultEvent(t=t, kind=kind, **entry))
        return cls(events)

    @classmethod
    def empty(cls) -> "FaultPlan":
        """The no-fault plan (installing it must perturb nothing)."""
        return cls(())

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        return self._events

    @property
    def is_empty(self) -> bool:
        return not self._events

    def events_for_disk(self, disk_id: int) -> list[FaultEvent]:
        return [e for e in self._events if e.disk == disk_id]

    def events_for_filer(self, filer_id: int) -> list[FaultEvent]:
        return [e for e in self._events if e.filer == filer_id]

    def describe(self) -> list[dict]:
        """The canonical scenario spec (JSON-able; round-trips exactly)."""
        return [e.describe() for e in self._events]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({len(self._events)} events)"
