"""The live fault injector a cluster carries during a faulted run.

``cluster.install_faults(plan)`` compiles the plan against the cluster's
topology and hangs the resulting :class:`FaultInjector` off
``cluster.faults``; from there:

* :meth:`repro.cluster.server.Cluster.block_service` hands each
  :class:`repro.disk.service.BlockService` its disk's
  :class:`repro.faults.timeline.DiskTimeline`, so queue completion times
  are warped in closed form (fail-stop -> ``inf``, slowdown -> stretch,
  recovery -> resume);
* the access machinery (:mod:`repro.core.access`) routes request and
  response instants through the per-filer
  :class:`repro.faults.timeline.LinkTimeline`;
* schemes consult :meth:`down_at` / :meth:`first_recovery_after` /
  :meth:`permanently_failed` to re-speculate and to decide when lost
  redundancy warrants a :mod:`repro.core.repair` pass
  (:func:`maybe_repair`);
* :meth:`schedule_on` registers the plan as real events on a DES
  :class:`repro.sim.core.Environment`, flipping event-driven
  :class:`repro.disk.drive.DiskDrive` entities mid-service and emitting
  ``fault.*`` trace instants through ``repro.obs``.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.faults.plan import (
    DISK_FAIL,
    DISK_RECOVER,
    DISK_SLOW,
    FILER_CRASH,
    FaultPlan,
)
from repro.faults.timeline import DiskTimeline, LinkTimeline, compile_plan


class FaultInjector:
    """A compiled fault plan bound to one cluster.

    Parameters
    ----------
    cluster:
        The :class:`repro.cluster.server.Cluster` (only its topology —
        ``n_disks`` / ``disks_per_filer`` — is read at compile time).
    plan:
        The fault schedule.  An empty plan compiles to no timelines at
        all, so every simulated quantity stays bit-identical to an
        uninstrumented run.
    """

    def __init__(self, cluster, plan: FaultPlan) -> None:
        self.cluster = cluster
        self.plan = plan
        self._disk_tl, self._link_tl = compile_plan(
            plan, cluster.disks_per_filer, cluster.n_disks
        )
        # Times at which capacity comes back anywhere: disk recoveries,
        # fail windows ending, filer restarts.  Schemes use these to decide
        # when re-speculation can possibly help.
        recoveries: list[float] = []
        for ev in plan:
            if ev.kind == DISK_RECOVER:
                recoveries.append(ev.t)
            elif ev.kind in (DISK_FAIL, FILER_CRASH) and ev.duration is not None:
                recoveries.append(ev.t + ev.duration)
        self._recovery_times = sorted(recoveries)

    # -- timeline access -------------------------------------------------------
    def timeline(self, disk_id: int) -> Optional[DiskTimeline]:
        """The disk's service-rate profile, or ``None`` if unfaulted."""
        return self._disk_tl.get(int(disk_id))

    def link(self, server_id: int) -> Optional[LinkTimeline]:
        """The server link's latency profile, or ``None`` if unfaulted."""
        return self._link_tl.get(int(server_id))

    def link_for_disk(self, disk_id: int) -> Optional[LinkTimeline]:
        return self.link(int(disk_id) // self.cluster.disks_per_filer)

    # -- state queries ---------------------------------------------------------
    def down_at(self, disk_id: int, t: float) -> bool:
        """Is the disk (or its filer) out of service at time ``t``?"""
        tl = self.timeline(disk_id)
        return tl is not None and tl.down_at(t)

    def permanently_failed(self, disk_id: int) -> bool:
        """Does the disk's profile end in an outage with no recovery?"""
        tl = self.timeline(disk_id)
        return tl is not None and tl.down_forever

    def first_recovery_after(self, t: float) -> Optional[float]:
        """Earliest instant after ``t`` at which any capacity returns."""
        for rt in self._recovery_times:
            if rt > t:
                return rt
        return None

    @property
    def has_faults(self) -> bool:
        return not self.plan.is_empty

    # -- observability ---------------------------------------------------------
    def emit_trace(self, tracer) -> None:
        """Record every planned fault as an instant on the ``fault`` track."""
        if not tracer.enabled:
            return
        for ev in self.plan:
            tracer.instant(
                f"fault.{ev.kind}", "fault", ev.t, track="fault", args=ev.describe()
            )
            tracer.count(f"fault.events:{ev.kind}")

    # -- DES integration -------------------------------------------------------
    def schedule_on(self, env, drives: Mapping[int, object] | None = None):
        """Register the plan as timed events on a DES environment.

        ``drives`` maps disk ids to event-driven
        :class:`repro.disk.drive.DiskDrive` entities; their ``fail`` /
        ``recover`` / ``set_slow`` hooks run at the scheduled instants
        (in-flight requests abort to ``inf``, queued ones are flushed).
        Every dispatched fault also lands on the trace as a
        ``fault.<kind>`` instant.  Returns the driver process.
        """
        drives = dict(drives or {})
        # Expand windowed faults into (time, action) pairs so a single
        # ordered pump can replay them.
        actions: list[tuple[float, int, str, object]] = []
        for i, ev in enumerate(self.plan):
            actions.append((ev.t, i, "start", ev))
            if ev.duration is not None and ev.kind in (DISK_FAIL, DISK_SLOW, FILER_CRASH):
                actions.append((ev.t + ev.duration, i, "end", ev))
        actions.sort(key=lambda a: (a[0], a[1]))
        tracer = env.tracer

        def filer_drives(filer_id: int):
            lo = filer_id * self.cluster.disks_per_filer
            hi = lo + self.cluster.disks_per_filer
            return [drives[d] for d in range(lo, hi) if d in drives]

        def apply(edge: str, ev) -> None:
            targets = []
            if ev.disk is not None and ev.disk in drives:
                targets = [drives[ev.disk]]
            elif ev.kind == FILER_CRASH:
                targets = filer_drives(int(ev.filer))
            for drive in targets:
                if ev.kind in (DISK_FAIL, FILER_CRASH):
                    if edge == "start":
                        drive.fail()
                    else:
                        drive.recover()
                elif ev.kind == DISK_RECOVER:
                    drive.recover()
                elif ev.kind == DISK_SLOW:
                    drive.set_slow(float(ev.factor) if edge == "start" else 1.0)
            if tracer.enabled:
                name = f"fault.{ev.kind}" if edge == "start" else f"fault.{ev.kind}:end"
                tracer.instant(name, "fault", env.now, track="fault", args=ev.describe())
                if edge == "start":
                    tracer.count(f"fault.events:{ev.kind}")

        def pump():
            for t, _, edge, ev in actions:
                if t > env.now:
                    yield env.timeout(t - env.now)
                apply(edge, ev)

        return env.process(pump(), name="fault-injector")


def maybe_repair(scheme, file_name: str, trial: int, result, scheduler=None, ledger=None):
    """Delegating alias for :func:`repro.core.repair.maybe_repair`.

    Kept here (lazily imported, avoiding the policy-layer import cycle)
    so fault-handling call sites can keep importing the repair entry
    point from :mod:`repro.faults`.  Returns the structured
    :class:`repro.core.repair.RepairDecision`.
    """
    from repro.core.repair import maybe_repair as _maybe_repair

    return _maybe_repair(
        scheme, file_name, trial, result, scheduler=scheduler, ledger=ledger
    )


def surviving_blocks(injector: Optional[FaultInjector], record) -> int:
    """Blocks of ``record`` on disks that are not permanently failed."""
    total = 0
    for idx, disk_id in enumerate(record.disk_ids):
        if injector is not None and injector.permanently_failed(int(disk_id)):
            continue
        total += len(record.placement[idx])
    return total
