"""Per-target compiled fault profiles: the closed-form fault transform.

The simulator's hot read/write paths are vectorised — each disk's queue
completion times are computed in closed form, not event by event
(:mod:`repro.disk.service`).  Mid-operation faults therefore enter the
same way: as a deterministic *time warp*.

A :class:`DiskTimeline` turns a disk's fault events into (a) a piecewise-
constant service-rate profile — rate 1 nominally, rate ``1/factor``
inside a slowdown window — and (b) a set of *fail-stop cutoffs*.  Nominal
completion times — wall times assuming full rate — are first mapped
through the inverse of the accumulated-capacity function (a block that
still needed ``w`` seconds of service completes once the disk has
delivered ``w`` seconds of capacity), then any block still unfinished
when a fail-stop (or filer crash) strikes is *lost*: its completion is
``inf``.  A fail-stop flushes the queue — it does not pause it — matching
the event-driven :meth:`repro.disk.drive.DiskDrive.fail` semantics.  A
recovered disk serves *new* requests submitted after the outage
(re-speculation's second round); it never resurrects the flushed ones.

A :class:`LinkTimeline` does the same for the network path: degradation
windows add one-way latency to messages departing inside them, and
blackout windows (filer crash) hold messages until the restart.

Both transforms are identity-free by construction: a target with no fault
events gets *no* timeline at all, so untouched disks/links keep
bit-identical arithmetic (the zero-perturbation guarantee).
"""

from __future__ import annotations

import math

import numpy as np

from repro.faults.plan import (
    DISK_FAIL,
    DISK_RECOVER,
    DISK_SLOW,
    FaultEvent,
    FaultPlan,
)


def _merge_windows(windows: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping [t0, t1) windows, sorted."""
    merged: list[tuple[float, float]] = []
    for t0, t1 in sorted(windows):
        if merged and t0 <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], t1))
        else:
            merged.append((t0, t1))
    return merged


class DiskTimeline:
    """One disk's fault profile: slowdown stretching + fail-stop cutoffs.

    Parameters
    ----------
    down:
        ``[t0, t1)`` outage windows (``t1`` may be ``inf`` for a permanent
        fail-stop).  Overlaps are merged.  Work unfinished at ``t0`` is
        lost (the queue flushes); the disk accepts new work again at
        ``t1``.
    slow:
        ``(t0, t1, factor)`` windows where service takes ``factor`` times
        longer.  Overlapping slowdowns compound by taking the largest
        factor (the bottleneck dominates).
    """

    def __init__(
        self,
        down: list[tuple[float, float]] | None = None,
        slow: list[tuple[float, float, float]] | None = None,
    ) -> None:
        self.down = _merge_windows(down or [])
        self.slow = sorted(slow or [])
        # Breakpoints of the piecewise-constant slow-only rate profile.
        cuts = {0.0}
        for t0, t1, _ in self.slow:
            cuts.add(t0)
            cuts.add(t1)
        self._cuts = np.array(sorted(cuts), dtype=np.float64)
        self._rates = np.array(
            [self._rate_in(t) for t in self._cuts], dtype=np.float64
        )
        self._fail_times = np.array([t0 for t0, _ in self.down], dtype=np.float64)

    def _rate_in(self, t0: float) -> float:
        """Slow-only service rate of the profile segment starting at ``t0``."""
        factor = 1.0
        for s0, s1, f in self.slow:
            if s0 <= t0 < s1:
                factor = max(factor, f)
        return 1.0 / factor

    def rate_at(self, t: float) -> float:
        """Instantaneous service rate at time ``t`` (0 during an outage)."""
        if self.down_at(t):
            return 0.0
        idx = int(np.searchsorted(self._cuts, t, side="right")) - 1
        return float(self._rates[max(idx, 0)])

    def down_at(self, t: float) -> bool:
        return any(d0 <= t < d1 for d0, d1 in self.down)

    @property
    def down_forever(self) -> bool:
        """True when the profile ends in a permanent outage."""
        return bool(self.down) and math.isinf(self.down[-1][1])

    def resume_time(self, t: float) -> float:
        """Earliest instant >= ``t`` the disk accepts work (may be ``inf``)."""
        for d0, d1 in self.down:
            if d0 <= t < d1:
                return d1
        return t

    def next_fail_after(self, t: float) -> float:
        """First fail-stop instant strictly after ``t`` (``inf`` if none)."""
        idx = int(np.searchsorted(self._fail_times, t, side="right"))
        return float(self._fail_times[idx]) if idx < self._fail_times.size else math.inf

    def warp(self, completions: np.ndarray, start: float) -> np.ndarray:
        """Map nominal (full-rate) completion times to faulted wall times.

        ``completions`` are the wall times each queued block would finish
        at if the disk served at rate 1 from ``start``; the cumulative
        service demand of block *i* is therefore ``completions[i] -
        start``.  Service begins once the disk is up (``start``, or the
        end of the outage covering it), slow windows stretch it through
        the inverse accumulated-capacity map, and every block still
        unfinished at the next fail-stop is lost (``inf``) — the queue
        does not survive a crash.
        """
        c = np.asarray(completions, dtype=np.float64)
        if c.size == 0:
            return c
        work = c - start
        s = self.resume_time(start)
        if math.isinf(s):
            return np.full(c.size, np.inf)

        # Slow-only segment boundaries restricted to [s, inf): the
        # profile's cuts after `s`, with `s` itself prepended.
        first = int(np.searchsorted(self._cuts, s, side="right"))
        times = np.concatenate([[s], self._cuts[first:]])
        rate0 = self._rates[max(first - 1, 0)]
        rates = np.concatenate([[rate0], self._rates[first:]])
        # Accumulated capacity at each boundary (strictly increasing:
        # every slow-only rate is positive).
        caps = np.concatenate([[0.0], np.cumsum(np.diff(times) * rates[:-1])])

        out = np.empty_like(work)
        # First boundary with enough accumulated capacity.
        seg = np.searchsorted(caps, work, side="left")
        inside = (seg > 0) & (seg < caps.size)
        if np.any(inside):
            j = seg[inside]
            out[inside] = times[j - 1] + (work[inside] - caps[j - 1]) / rates[j - 1]
        out[seg == 0] = s  # zero (or negative) residual work
        beyond = seg >= caps.size
        if np.any(beyond):
            # Work outlives every breakpoint: finish at the final rate.
            out[beyond] = times[-1] + (work[beyond] - caps[-1]) / rates[-1]
        # Fail-stop cutoff: blocks not transferred when the disk dies are
        # erasures (a block completing exactly at the instant made it out).
        cutoff = self.next_fail_after(s)
        if math.isfinite(cutoff):
            out[out > cutoff] = np.inf
        return out

    @classmethod
    def from_events(
        cls,
        events: list[FaultEvent],
        extra_down: list[tuple[float, float]] | None = None,
    ) -> "DiskTimeline | None":
        """Compile one disk's events (+ filer-crash windows) to a profile.

        Returns ``None`` when there is nothing to compile, so untouched
        disks skip the warp entirely.
        """
        down: list[tuple[float, float]] = list(extra_down or [])
        slow: list[tuple[float, float, float]] = []
        open_fail: float | None = None
        for ev in sorted(events, key=lambda e: e.t):
            if ev.kind == DISK_FAIL:
                if ev.duration is not None:
                    down.append((ev.t, ev.t + ev.duration))
                else:
                    open_fail = ev.t
            elif ev.kind == DISK_RECOVER:
                if open_fail is not None:
                    down.append((open_fail, ev.t))
                    open_fail = None
            elif ev.kind == DISK_SLOW:
                assert ev.duration is not None and ev.factor is not None
                slow.append((ev.t, ev.t + ev.duration, float(ev.factor)))
        if open_fail is not None:
            down.append((open_fail, math.inf))
        if not down and not slow:
            return None
        return cls(down=down, slow=slow)


class LinkTimeline:
    """One server link's latency-degradation and blackout profile.

    Parameters
    ----------
    extra:
        ``(t0, t1, extra_s)`` windows adding one-way latency to messages
        *departing* inside them (overlaps sum).
    blackout:
        ``[t0, t1)`` windows (filer crash) during which no message moves:
        a payload ready inside a blackout leaves at its end, and a request
        arriving inside one is processed at its end.
    """

    def __init__(
        self,
        extra: list[tuple[float, float, float]] | None = None,
        blackout: list[tuple[float, float]] | None = None,
    ) -> None:
        self.extra = sorted(extra or [])
        self.blackout = _merge_windows(blackout or [])

    def extra_at(self, t: np.ndarray | float) -> np.ndarray | float:
        """Added one-way latency for a message departing at ``t``."""
        t_arr = np.asarray(t, dtype=np.float64)
        add = np.zeros_like(t_arr)
        for t0, t1, e in self.extra:
            add = add + np.where((t_arr >= t0) & (t_arr < t1), e, 0.0)
        return add if isinstance(t, np.ndarray) else float(add)

    def _defer(self, t: np.ndarray) -> np.ndarray:
        """Shift instants falling inside a blackout to the blackout end."""
        out = np.asarray(t, dtype=np.float64).copy()
        for t0, t1 in self.blackout:
            out = np.where((out >= t0) & (out < t1), t1, out)
        return out

    def response_arrivals(
        self, ready: np.ndarray | float, one_way_s: float
    ) -> np.ndarray | float:
        """Client arrival times for payloads ready at the filer at ``ready``."""
        t = self._defer(np.asarray(ready, dtype=np.float64))
        out = t + (one_way_s + self.extra_at(t))
        return out if isinstance(ready, np.ndarray) else float(out)

    def request_arrival(self, t_send: float, one_way_s: float) -> float:
        """When a request sent at ``t_send`` is acted on by the filer."""
        arrive = t_send + one_way_s + float(self.extra_at(t_send))
        return float(self._defer(np.asarray([arrive]))[0])

    @classmethod
    def from_windows(
        cls,
        extra: list[tuple[float, float, float]],
        blackout: list[tuple[float, float]],
    ) -> "LinkTimeline | None":
        if not extra and not blackout:
            return None
        return cls(extra=extra, blackout=blackout)


def compile_plan(
    plan: FaultPlan, disks_per_filer: int, n_disks: int
) -> tuple[dict[int, DiskTimeline], dict[int, LinkTimeline]]:
    """Compile a plan into per-disk and per-filer timelines.

    A ``filer_crash`` contributes a down window to each of the filer's
    disks *and* a blackout to its link; ``link_degrade`` touches only the
    link.  Only targets with events get a timeline.
    """
    disk_events: dict[int, list[FaultEvent]] = {}
    filer_down: dict[int, list[tuple[float, float]]] = {}
    link_extra: dict[int, list[tuple[float, float, float]]] = {}
    for ev in plan:
        if ev.disk is not None:
            disk_events.setdefault(int(ev.disk), []).append(ev)
        elif ev.kind == "filer_crash":
            assert ev.duration is not None
            filer_down.setdefault(int(ev.filer), []).append((ev.t, ev.t + ev.duration))
        elif ev.kind == "link_degrade":
            assert ev.duration is not None and ev.extra_s is not None
            link_extra.setdefault(int(ev.filer), []).append(
                (ev.t, ev.t + ev.duration, float(ev.extra_s))
            )

    disk_tl: dict[int, DiskTimeline] = {}
    touched = set(disk_events)
    for f in filer_down:
        touched.update(
            range(f * disks_per_filer, min((f + 1) * disks_per_filer, n_disks))
        )
    for d in sorted(touched):
        f = d // disks_per_filer
        tl = DiskTimeline.from_events(
            disk_events.get(d, []), extra_down=filer_down.get(f)
        )
        if tl is not None:
            disk_tl[d] = tl

    link_tl: dict[int, LinkTimeline] = {}
    for f in sorted(set(link_extra) | set(filer_down)):
        tl = LinkTimeline.from_windows(
            link_extra.get(f, []), filer_down.get(f, [])
        )
        if tl is not None:
            link_tl[f] = tl
    return disk_tl, link_tl
