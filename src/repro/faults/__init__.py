"""Deterministic mid-operation fault injection (the robustness test rig).

The paper's headline claim is *robustness*: low-variance bandwidth when
disks misbehave.  The rest of the simulator draws disk state once per
trial, before an access starts; this package makes faults *temporal* —
disks fail, slow down and recover, filers crash and restart, and links
degrade at scheduled points on the simulated clock, in the middle of an
access.

Three layers:

* :class:`repro.faults.plan.FaultPlan` — a validated, time-sorted list of
  :class:`repro.faults.plan.FaultEvent`, built from a declarative scenario
  spec (:meth:`FaultPlan.from_scenario`) or sampled from a seeded
  :class:`repro.faults.model.FaultModel` (per-disk MTTF/MTTR-style
  distributions).
* :class:`repro.faults.timeline.DiskTimeline` /
  :class:`repro.faults.timeline.LinkTimeline` — the plan compiled per
  target into piecewise service-capacity and latency profiles that the
  vectorised service model (:class:`repro.disk.service.BlockService`) and
  the access machinery apply in closed form.
* :class:`repro.faults.inject.FaultInjector` — the live object a
  :class:`repro.cluster.server.Cluster` carries
  (``cluster.install_faults(plan)``); schemes, the disk service and the
  network path consult it, the event-driven
  :class:`repro.disk.drive.DiskDrive` reacts to it through
  :meth:`FaultInjector.schedule_on`, and fault events appear in
  ``repro.obs`` traces.

Determinism contract: a plan is pure data; installing a plan with no
events leaves every simulated quantity bit-identical to a plain run, and
equal (plan, seed) pairs always reproduce the same results.  See
``docs/fault_injection.md``.
"""

from repro.faults.inject import FaultInjector, maybe_repair
from repro.faults.model import FaultModel
from repro.faults.plan import (
    DISK_FAIL,
    DISK_RECOVER,
    DISK_SLOW,
    FILER_CRASH,
    LINK_DEGRADE,
    FaultEvent,
    FaultPlan,
)
from repro.faults.timeline import DiskTimeline, LinkTimeline

__all__ = [
    "DISK_FAIL",
    "DISK_RECOVER",
    "DISK_SLOW",
    "FILER_CRASH",
    "LINK_DEGRADE",
    "DiskTimeline",
    "FaultEvent",
    "FaultInjector",
    "FaultModel",
    "FaultPlan",
    "LinkTimeline",
    "maybe_repair",
]
