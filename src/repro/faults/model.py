"""Seeded stochastic fault generation (MTTF/MTTR-style distributions).

Real erasure-coded clusters see far more transient degradation than clean
fail-stop (Rashmi et al.'s Facebook-cluster study; Dimakis et al.'s repair
analysis): disks stall and come back, whole machines reboot, links get
congested.  A :class:`FaultModel` captures that regime with per-disk
exponential failure/repair clocks plus Poisson slowdown and filer-crash
processes, and samples a concrete :class:`repro.faults.plan.FaultPlan`
from any :class:`numpy.random.Generator` — typically an
:class:`repro.sim.rng.RngHub` stream, so fault draws never perturb the
simulator's other random streams and equal seeds reproduce equal storms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.faults.plan import (
    DISK_FAIL,
    DISK_SLOW,
    FILER_CRASH,
    LINK_DEGRADE,
    FaultEvent,
    FaultPlan,
)


@dataclass(frozen=True)
class FaultModel:
    """Distribution parameters for sampled fault storms.

    All rates are per simulated second over the sampling horizon, scaled
    down from real-world MTTF/MTTR figures so that multi-hour failure
    processes produce interesting event counts inside a seconds-long
    access window.

    Attributes
    ----------
    mttf_s:
        Mean time to (fail-stop) failure per disk; ``inf`` disables
        fail-stops.
    mttr_s:
        Mean time to repair a failed disk; ``None`` makes failures
        permanent within the horizon.
    slow_mtbf_s:
        Mean time between transient slowdowns per disk; ``inf`` disables.
    slow_factor / slow_duration_s:
        Mean service-time multiplier (>= 1) and mean window length of a
        slowdown; both drawn exponentially around the mean (factor is
        ``1 + Exp(slow_factor - 1)``).
    filer_crash_mtbf_s:
        Mean time between filer crashes across the whole cluster;
        ``inf`` disables.  Crash windows last ``Exp(filer_down_s)``.
    link_degrade_mtbf_s / link_extra_s / link_duration_s:
        Cluster-wide link-degradation process and its window parameters.
    """

    mttf_s: float = float("inf")
    mttr_s: Optional[float] = None
    slow_mtbf_s: float = float("inf")
    slow_factor: float = 4.0
    slow_duration_s: float = 0.5
    filer_crash_mtbf_s: float = float("inf")
    filer_down_s: float = 0.5
    link_degrade_mtbf_s: float = float("inf")
    link_extra_s: float = 0.020
    link_duration_s: float = 1.0

    def __post_init__(self) -> None:
        for name in ("mttf_s", "slow_mtbf_s", "filer_crash_mtbf_s", "link_degrade_mtbf_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive (use inf to disable)")
        if self.mttr_s is not None and self.mttr_s <= 0:
            raise ValueError("mttr_s must be positive (or None for permanent)")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1")

    def sample_plan(
        self,
        rng: np.random.Generator,
        n_disks: int,
        horizon_s: float,
        n_filers: int = 0,
    ) -> FaultPlan:
        """Draw one concrete fault storm over ``[0, horizon_s)``.

        Event times, targets and window parameters all come from ``rng``;
        the draw order is fixed (disks ascending, then filers), so equal
        generators yield equal plans.
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        events: list[FaultEvent] = []
        for d in range(n_disks):
            # Fail-stop clock: first exponential arrival inside the horizon
            # fails the disk; an MTTR draw may bring it back.
            if np.isfinite(self.mttf_s):
                t_fail = float(rng.exponential(self.mttf_s))
                if t_fail < horizon_s:
                    duration = None
                    if self.mttr_s is not None:
                        duration = float(rng.exponential(self.mttr_s))
                        duration = max(duration, 1e-6)
                    events.append(
                        FaultEvent(t=t_fail, kind=DISK_FAIL, disk=d, duration=duration)
                    )
            # Transient slowdowns: Poisson arrivals over the horizon.
            if np.isfinite(self.slow_mtbf_s):
                t = float(rng.exponential(self.slow_mtbf_s))
                while t < horizon_s:
                    factor = 1.0 + float(rng.exponential(max(self.slow_factor - 1.0, 1e-9)))
                    duration = max(float(rng.exponential(self.slow_duration_s)), 1e-6)
                    events.append(
                        FaultEvent(
                            t=t, kind=DISK_SLOW, disk=d,
                            factor=factor, duration=duration,
                        )
                    )
                    t += float(rng.exponential(self.slow_mtbf_s))
        for proc, kind in (
            (self.filer_crash_mtbf_s, FILER_CRASH),
            (self.link_degrade_mtbf_s, LINK_DEGRADE),
        ):
            if not np.isfinite(proc) or n_filers <= 0:
                continue
            t = float(rng.exponential(proc))
            while t < horizon_s:
                filer = int(rng.integers(0, n_filers))
                if kind == FILER_CRASH:
                    duration = max(float(rng.exponential(self.filer_down_s)), 1e-6)
                    events.append(
                        FaultEvent(t=t, kind=kind, filer=filer, duration=duration)
                    )
                else:
                    duration = max(float(rng.exponential(self.link_duration_s)), 1e-6)
                    events.append(
                        FaultEvent(
                            t=t, kind=kind, filer=filer,
                            duration=duration, extra_s=self.link_extra_s,
                        )
                    )
                t += float(rng.exponential(proc))
        return FaultPlan(events)
