"""repro.rebuild — the repair economy as a first-class, metered activity.

The fault layer kills disks and the schemes re-speculate around the loss,
but restoring the lost redundancy has a *network* price: helper reads,
replacement writes, disks dragged into the rebuild, and degraded
foreground reads while the file sits below its redundancy target.  This
package meters and schedules that work:

* :mod:`repro.rebuild.ledger` — :class:`RepairLedger` /
  :class:`RepairEvent`: one append-only account of every rebuild and
  every degraded read, hung off the cluster so the single
  ``accesscore.repair`` wiring site covers both engines.
* :mod:`repro.rebuild.scheduler` — pluggable rebuild schedulers (eager,
  lazy threshold-triggered, batched) deciding *when* a flagged file is
  actually rebuilt; repair traffic then consumes drive capacity through
  the ordinary disk service model.

The regenerating-code side of the economy lives in
:mod:`repro.coding.regenerating`; the repair passes that pay the ledger
are in :mod:`repro.core.repair`; the ``ext_repair`` experiment sweeps the
whole space under seeded fault storms.
"""

from repro.rebuild.ledger import RepairEvent, RepairLedger
from repro.rebuild.scheduler import (
    BatchedScheduler,
    EagerScheduler,
    LazyThresholdScheduler,
    RebuildScheduler,
    RepairTask,
    scheduler_for,
)

__all__ = [
    "BatchedScheduler",
    "EagerScheduler",
    "LazyThresholdScheduler",
    "RebuildScheduler",
    "RepairEvent",
    "RepairLedger",
    "RepairTask",
    "scheduler_for",
]
