"""The repair ledger: every byte a rebuild moves, accounted once.

Rashmi et al.'s warehouse-cluster study frames repair economics in three
currencies — bytes crossing the network per failure, disks dragged into
each rebuild, and the latency tax on foreground reads while redundancy is
below target.  :class:`RepairLedger` keeps all three: repair passes
append a :class:`RepairEvent`, and the access core's repair-annotation
site notes every degraded read against the same account.  The ledger is
pure bookkeeping — it never influences simulated timing, so an installed
but unconsulted ledger leaves every golden bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RepairEvent:
    """One metered rebuild pass."""

    file_name: str
    #: Coding algorithm that performed the rebuild (``lt``,
    #: ``reed-solomon``, ``regenerating-msr``, ``regenerating-mbr``).
    algorithm: str
    #: Bytes read from helper disks over the network.
    bytes_read_helpers: int
    #: Bytes written to the replacement locations.
    bytes_written: int
    #: Distinct disks that served helper reads or absorbed writes.
    disks_touched: int
    #: Coded blocks destroyed by the failure / recreated by the pass.
    blocks_lost: int
    blocks_rebuilt: int
    #: Simulated wall-clock the rebuild occupied (read + write).
    wall_time_s: float

    @property
    def bytes_moved(self) -> int:
        return self.bytes_read_helpers + self.bytes_written


@dataclass
class RepairLedger:
    """Append-only account of rebuild traffic and degraded reads."""

    events: list[RepairEvent] = field(default_factory=list)
    #: Foreground reads settled while surviving redundancy sat below the
    #: repair floor, and their summed latency.
    degraded_reads: int = 0
    degraded_read_s: float = 0.0

    def record(self, event: RepairEvent) -> None:
        self.events.append(event)

    def note_degraded_read(self, latency_s: float, surviving_redundancy: float) -> None:
        self.degraded_reads += 1
        if latency_s == latency_s and latency_s != float("inf"):  # finite
            self.degraded_read_s += latency_s

    # -- aggregates -----------------------------------------------------------
    @property
    def repairs(self) -> int:
        return len(self.events)

    @property
    def bytes_read_helpers(self) -> int:
        return sum(e.bytes_read_helpers for e in self.events)

    @property
    def bytes_written(self) -> int:
        return sum(e.bytes_written for e in self.events)

    @property
    def bytes_moved(self) -> int:
        return self.bytes_read_helpers + self.bytes_written

    @property
    def blocks_lost(self) -> int:
        return sum(e.blocks_lost for e in self.events)

    @property
    def wall_time_s(self) -> float:
        return sum(e.wall_time_s for e in self.events)

    def summary(self) -> dict:
        """Aggregate view for experiment rows and traces."""
        lost = self.blocks_lost
        return {
            "repairs": self.repairs,
            "bytes_read_helpers": self.bytes_read_helpers,
            "bytes_written": self.bytes_written,
            "bytes_moved": self.bytes_moved,
            "blocks_lost": lost,
            "disks_touched": sum(e.disks_touched for e in self.events),
            "wall_time_s": self.wall_time_s,
            "degraded_reads": self.degraded_reads,
            "degraded_read_s": self.degraded_read_s,
            #: MB read from helpers per MB of data the failures destroyed —
            #: the Dimakis repair-bandwidth ratio (1.0 is the MBR floor for
            #: exact repair of what was stored).
            "read_amplification": (
                self.bytes_read_helpers / (lost or 1) /
                max(1, self._block_bytes()) if lost else 0.0
            ),
        }

    def _block_bytes(self) -> int:
        # All events in one run share the file's block size; infer it from
        # the writes (bytes_written == blocks_rebuilt * block_bytes).
        for e in self.events:
            if e.blocks_rebuilt:
                return e.bytes_written // e.blocks_rebuilt
        return 1
