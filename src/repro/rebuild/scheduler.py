"""Rebuild schedulers: *when* a flagged file is actually repaired.

A degraded read flags a file; the scheduler decides whether the rebuild
runs now or waits.  The three classic policies:

* :class:`EagerScheduler` — repair immediately on every trigger.  Lowest
  data-loss risk, maximum interference with foreground traffic.
* :class:`LazyThresholdScheduler` — queue triggers and only drain the
  queue once some file's surviving redundancy falls below a deeper
  floor.  Transient failures that recover on their own never cost a
  byte of repair traffic.
* :class:`BatchedScheduler` — queue triggers and drain in fixed-size
  batches, amortising the per-pass disk seeks.

Schedulers are small per-run mutable queues (unlike the stateless policy
singletons of :mod:`repro.core.policy` — one scheduler instance serves
one simulation run).  :func:`repro.core.repair.maybe_repair` offers each
trigger and repairs whatever the scheduler releases; anything still
queued at the end of a run is surfaced by :meth:`RebuildScheduler.flush`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RepairTask:
    """One flagged file awaiting rebuild."""

    file_name: str
    trial: int
    #: Sorted ids of the permanently-failed disks that triggered the flag.
    dead_disks: tuple[int, ...]
    #: Surviving redundancy at trigger time (e.g. 0.5 = 1.5x the data).
    surviving_redundancy: float


class RebuildScheduler:
    """Base: a FIFO of offered tasks; subclasses decide the release rule."""

    policy = "base"

    def __init__(self) -> None:
        self._queue: list[RepairTask] = []

    @property
    def pending(self) -> tuple[RepairTask, ...]:
        return tuple(self._queue)

    def offer(self, task: RepairTask) -> list[RepairTask]:
        """Queue ``task``; return every task that should repair *now*."""
        self._queue.append(task)
        if self._release(task):
            return self._drain()
        return []

    def flush(self) -> list[RepairTask]:
        """Release everything still queued (end of run / operator drain)."""
        return self._drain()

    def _release(self, task: RepairTask) -> bool:
        raise NotImplementedError

    def _drain(self) -> list[RepairTask]:
        out, self._queue = self._queue, []
        return out


class EagerScheduler(RebuildScheduler):
    """Repair on every trigger, immediately."""

    policy = "eager"

    def _release(self, task: RepairTask) -> bool:
        return True


class LazyThresholdScheduler(RebuildScheduler):
    """Wait until some file's surviving redundancy dips below ``floor``."""

    policy = "lazy"

    def __init__(self, floor: float = 0.25) -> None:
        super().__init__()
        self.floor = floor

    def _release(self, task: RepairTask) -> bool:
        return task.surviving_redundancy < self.floor


class BatchedScheduler(RebuildScheduler):
    """Accumulate ``batch_size`` triggers, then drain them together."""

    policy = "batched"

    def __init__(self, batch_size: int = 4) -> None:
        super().__init__()
        self.batch_size = batch_size

    def _release(self, task: RepairTask) -> bool:
        return len(self._queue) >= self.batch_size


def scheduler_for(policy: str, **kwargs) -> RebuildScheduler:
    """Construct a scheduler by policy name (``eager``/``lazy``/``batched``)."""
    try:
        cls = {
            "eager": EagerScheduler,
            "lazy": LazyThresholdScheduler,
            "batched": BatchedScheduler,
        }[policy]
    except KeyError:
        raise ValueError(f"unknown rebuild policy {policy!r}") from None
    return cls(**kwargs)
